"""Ablation: the lambda >= 20 update-skip optimization (Section 4.1.2).

The paper skips incremental weight updates for nets with >= 20 outside pins
because the per-pin weight change is negligible.  This ablation verifies
the trade: the skipping grower is not slower, and Phase II still extracts
the same candidate from its orderings.
"""

import time

from repro.finder import FinderConfig
from repro.finder.candidate import extract_candidate
from repro.finder.ordering import grow_linear_ordering
from repro.generators.industrial import IndustrialSpec, generate_industrial
from repro.utils.rng import ensure_rng


def run_ablation(seed: int = 7):
    spec = IndustrialSpec(glue_gates=6000, rom_blocks=((6, 48), (5, 24)))
    netlist, truth = generate_industrial(spec, seed=seed)
    rng = ensure_rng(seed + 1)
    seeds = [rng.choice(sorted(block)) for block in truth]
    config = FinderConfig()

    outcomes = []
    for lambda_skip in (0, 20):
        start = time.perf_counter()
        candidates = []
        for seed_cell in seeds:
            ordering = grow_linear_ordering(
                netlist, seed_cell, 1500, lambda_skip=lambda_skip
            )
            candidate = extract_candidate(netlist, ordering, config, seed=seed_cell)
            candidates.append(candidate.cells if candidate else frozenset())
        outcomes.append((time.perf_counter() - start, candidates))
    return truth, outcomes


def test_ablation_lambda_skip(benchmark, once):
    truth, outcomes = benchmark.pedantic(run_ablation, **once)
    (exact_time, exact_sets), (skip_time, skip_sets) = outcomes
    print(f"\nlambda-skip off: {exact_time:.2f}s, on: {skip_time:.2f}s")

    for block, exact, skipped in zip(truth, exact_sets, skip_sets):
        if not exact or not skipped:
            continue
        jaccard = len(exact & skipped) / len(exact | skipped)
        assert jaccard > 0.9, "skipping must not change the found structure"
        assert len(block & skipped) / len(block) > 0.9
