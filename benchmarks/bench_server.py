"""Daemon serving latency: cold vs. warm submits, per-priority throughput.

Starts a real :class:`~repro.server.daemon.ServerDaemon` on a temp socket,
then measures through the :class:`~repro.server.client.Client`:

* **cold** — first submit of a design+config: parse (or mmap) the design,
  run detection through the warm pool, cache the report;
* **warm** — repeat submit of the same job: answered inline from the
  result store without queueing or touching the pool.  This is the
  daemon's reason to exist, so the warm-vs-cold speedup is asserted, and
  at full scale the warm round trip must meet the < 50 ms acceptance
  bound;
* **priority classes** — a burst across interactive/batch/sweep, recording
  per-class queue-wait and verifying interactive waits least.

Numbers land in ``BENCH_server.json`` via :mod:`_record`.

``REPRO_BENCH_SMOKE=1`` shrinks the design and relaxes the wall-clock
bounds (CI containers have noisy clocks); the structural assertions —
warm answered from cache, no pool traffic, priority ordering — always run.
"""

import os
import statistics
import time

from _record import record

from repro.generators.random_gtl import planted_gtl_graph
from repro.io.hgr import write_hgr
from repro.server import Client, ServerConfig, ServerDaemon

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
NUM_CELLS = 800 if SMOKE else 4_000
NUM_SEEDS = 6 if SMOKE else 24
WARM_REPEATS = 5 if SMOKE else 20
BURST_PER_CLASS = 2 if SMOKE else 4

#: The ISSUE's acceptance bound for a warm repeat request (full scale).
WARM_BUDGET_S = 0.050
#: Minimum warm-vs-cold speedup asserted at full scale.
MIN_WARM_SPEEDUP = 5.0


def test_server_cold_warm_and_priorities(tmp_path):
    netlist, _ = planted_gtl_graph(NUM_CELLS, [NUM_CELLS // 10], seed=3)
    design = str(tmp_path / "design.hgr")
    write_hgr(netlist, design)

    config = ServerConfig(
        socket_path=str(tmp_path / "bench.sock"),
        cache_dir=str(tmp_path / "cache"),
        workers=1,
    )
    daemon = ServerDaemon(config)
    daemon.start()
    try:
        client = Client(config.socket_path)

        start = time.perf_counter()
        cold = client.submit(
            design, config={"num_seeds": NUM_SEEDS, "seed": 7}
        )
        cold_s = time.perf_counter() - start
        assert cold["cached"] is False

        pool_batches = daemon.pool.stats.batches
        warm_samples = []
        for _ in range(WARM_REPEATS):
            start = time.perf_counter()
            warm = client.submit(
                design, config={"num_seeds": NUM_SEEDS, "seed": 7}
            )
            warm_samples.append(time.perf_counter() - start)
            assert warm["cached"] is True
            assert warm["report"] == cold["report"]
        warm_s = statistics.median(warm_samples)
        # Warm requests never reach the pool (no process involvement) and
        # never enter the queue.
        assert daemon.pool.stats.batches == pool_batches
        assert daemon.counters["warm_hits"] == WARM_REPEATS

        # Priority burst: queue everything with the scheduler busy, then
        # compare per-class queue waits.
        job_ids = {}
        for priority in ("sweep", "batch", "interactive"):
            job_ids[priority] = [
                client.submit(
                    design,
                    config={"num_seeds": NUM_SEEDS, "seed": 100 + hash(priority) % 50 + i},
                    priority=priority,
                    wait=False,
                )["job_id"]
                for i in range(BURST_PER_CLASS)
            ]
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline:
            states = [
                client.status(job_id)["job"]["state"]
                for ids in job_ids.values()
                for job_id in ids
            ]
            if all(state == "done" for state in states):
                break
            time.sleep(0.05)
        else:
            raise AssertionError(f"burst did not drain: {states}")

        waits = {
            priority: statistics.mean(
                client.status(job_id)["job"]["wait_s"] for job_id in ids
            )
            for priority, ids in job_ids.items()
        }
        # Submission order was sweep -> batch -> interactive, so FIFO would
        # serve interactive LAST; priority scheduling must invert that.
        assert waits["interactive"] <= waits["sweep"]

        status = client.status()
    finally:
        daemon.shutdown(drain=False)

    speedup = cold_s / max(warm_s, 1e-9)
    print(
        f"\n{NUM_CELLS}-cell design: cold {cold_s * 1e3:.1f}ms, "
        f"warm {warm_s * 1e3:.2f}ms (median of {WARM_REPEATS}, "
        f"speedup x{speedup:.0f})"
    )
    print(
        "queue waits: "
        + ", ".join(f"{p} {w * 1e3:.1f}ms" for p, w in sorted(waits.items()))
    )
    if not SMOKE:
        assert warm_s < WARM_BUDGET_S
        assert speedup >= MIN_WARM_SPEEDUP

    record(
        "server",
        {
            "num_cells": NUM_CELLS,
            "num_seeds": NUM_SEEDS,
            "cold_seconds": cold_s,
            "warm_seconds_median": warm_s,
            "warm_seconds_all": warm_samples,
            "warm_speedup": speedup,
            "warm_budget_seconds": WARM_BUDGET_S,
            "burst_per_class": BURST_PER_CLASS,
            "queue_wait_seconds": waits,
            "counters": status["counters"],
            "queue": status["queue"],
        },
        smoke=SMOKE,
    )
