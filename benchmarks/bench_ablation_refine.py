"""Ablation: Phase III genetic refinement on/off (Section 3.2.3).

The paper refines each candidate with interior re-seeds and set operations
because "a candidate GTL grown from a random seed might be slightly
inaccurate".  This ablation runs the finder with refinement disabled
(``refine_count=0``) and enabled, comparing miss+over error against the
planted ground truth.
"""

from repro.analysis.overlap import match_to_ground_truth
from repro.finder import FinderConfig, find_tangled_logic
from repro.generators.random_gtl import planted_gtl_graph


def run_ablation(seed: int = 13):
    netlist, truth = planted_gtl_graph(8000, [400, 700], seed=seed)
    errors = {}
    for refine_count in (0, 3):
        config = FinderConfig(num_seeds=24, refine_count=refine_count, seed=seed)
        report = find_tangled_logic(netlist, config)
        matches = match_to_ground_truth(truth, report.gtls)
        errors[refine_count] = sum(m.miss + m.over for m in matches)
    return errors


def test_ablation_refinement(benchmark, once):
    errors = benchmark.pedantic(run_ablation, **once)
    print(f"\ntotal miss+over error: no refinement {errors[0]:.4f}, "
          f"with refinement {errors[3]:.4f}")
    assert errors[3] <= errors[0] + 1e-9, (
        "genetic refinement must not make candidates worse"
    )
    assert errors[3] < 0.2, "refined candidates are nearly exact"
