"""Sharded sweep scaling: coordinator wall-clock vs shard count.

One deduplicated sweep (2 designs x a 4-point config grid = 8 distinct
deterministic jobs) executed cold through :class:`SweepCoordinator` at 1,
2 and 4 shards, each against a fresh cache. Two claims:

* **Parity** — the merged point rows are bit-identical at every shard
  count (modulo wall-clock fields). Asserted at every scale; this is the
  same invariant CI's sharded-parity smoke checks through the CLI.
* **Scaling** — with 4 worker processes the cold sweep is **>= 2x**
  faster than one process. Shard parallelism is process parallelism, so
  the floor is only asserted at full scale on machines with >= 4 CPUs;
  on smaller hosts the measured ratio is recorded (with ``cpu_count``,
  so the trajectory stays interpretable) but cannot exceed ~1x and is
  not an acceptance failure of the coordinator.

Results land in ``BENCH_sweep.json`` (headline: ``speedup_4_shards``),
with the 4-shard run's :class:`RunReport` embedded so the record shows
the per-shard span breakdown (``sweep.shard``) and merge/plan phases.
``REPRO_BENCH_SMOKE=1`` shrinks the designs and skips the floor.
"""

import os
import time

try:
    from benchmarks._record import record
except ImportError:  # invoked outside the repo root: benchmarks/ is on sys.path
    from _record import record
from repro.finder.config import FinderConfig
from repro.generators.random_gtl import planted_gtl_graph
from repro.obs import RunReport, trace
from repro.service.aggregate import aggregate_sweep, point_rows
from repro.service.coordinator import SweepCoordinator

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

if SMOKE:
    DESIGN_CELLS = (400, 500)
    BASE = FinderConfig(num_seeds=4, seed=7)
    GRID = {"lambda_skip": [0, 10], "min_gtl_size": [20, 30]}
else:
    DESIGN_CELLS = (5_000, 6_000)
    BASE = FinderConfig(num_seeds=16, seed=7)
    GRID = {"lambda_skip": [0, 10], "num_seeds": [16, 24]}

SHARD_COUNTS = (1, 2, 4)

#: Full-scale floor: a 4-shard cold sweep on >= 4 CPUs must at least
#: halve the single-process wall clock.
SPEEDUP_FLOOR = 2.0


def _designs():
    designs = []
    for index, cells in enumerate(DESIGN_CELLS):
        netlist, _ = planted_gtl_graph(cells, [cells // 12], seed=index)
        designs.append((f"d{index}", netlist))
    return designs


def _comparable_rows(outcome):
    rows = point_rows(outcome)
    for row in rows:
        row.pop("runtime_seconds")
        row.pop("cached")
        if row["report"]:
            row["report"].pop("runtime_seconds")
    return rows


def _run_cold(designs, num_shards, cache_dir):
    start = time.perf_counter()
    outcome = SweepCoordinator(num_shards, cache_dir=cache_dir).run(
        designs, BASE, GRID
    )
    seconds = time.perf_counter() - start
    assert all(result.ok for result in outcome.job_results)
    assert not outcome.failed_shards
    return outcome, seconds


def run(tmp_dir):
    designs = _designs()
    reference_rows = None
    seconds_by_count = {}
    run_report = None

    for num_shards in SHARD_COUNTS:
        cache_dir = os.path.join(tmp_dir, f"cache-{num_shards}")
        if num_shards == max(SHARD_COUNTS):
            trace.enable()
            try:
                outcome, seconds = _run_cold(designs, num_shards, cache_dir)
                run_report = RunReport.from_tracer()
            finally:
                trace.disable()
        else:
            outcome, seconds = _run_cold(designs, num_shards, cache_dir)
        seconds_by_count[num_shards] = seconds

        rows = _comparable_rows(outcome)
        if reference_rows is None:
            reference_rows = rows
        else:
            assert rows == reference_rows, (
                f"{num_shards}-shard rows diverge from 1-shard rows"
            )
        aggregate = aggregate_sweep(outcome)
        assert aggregate.failed_points == 0
        print(
            f"shards={num_shards}: {seconds:.2f}s cold "
            f"({aggregate.jobs} job(s), {len(aggregate.shards)} shard(s))"
        )

    cpu_count = os.cpu_count() or 1
    speedup = round(seconds_by_count[1] / max(seconds_by_count[4], 1e-9), 2)
    results = {
        "jobs": len(reference_rows),
        "cells": list(DESIGN_CELLS),
        "cpu_count": cpu_count,
        "seconds_by_shards": {
            str(count): round(seconds, 4)
            for count, seconds in seconds_by_count.items()
        },
        "speedup_4_shards": speedup,
        "parity": True,  # asserted above at every shard count
        "smoke": SMOKE,
    }
    if not SMOKE and cpu_count >= 4:
        assert speedup >= SPEEDUP_FLOOR, (
            f"4-shard cold sweep only {speedup}x faster than 1 shard "
            f"on {cpu_count} CPUs (floor {SPEEDUP_FLOOR}x)"
        )
    record(
        "sweep",
        results,
        smoke=SMOKE,
        headline="speedup_4_shards",
        higher_is_better=True,
        run_report=run_report.to_dict() if run_report else None,
    )
    print(f"speedup at 4 shards: x{speedup} ({cpu_count} CPU(s))")
    return results


def test_sweep_shard_scaling(tmp_path):
    """Pytest entry point (CI smoke runs this with REPRO_BENCH_SMOKE=1)."""
    run(str(tmp_path))


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory() as tmp_dir:
        run(tmp_dir)
