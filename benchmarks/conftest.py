"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures at a
laptop-scale configuration and asserts the paper's qualitative shape.  Each
harness runs once per benchmark round (``rounds=1``) because the workloads
are themselves multi-second pipelines, not microbenchmarks.
"""

import pytest

ROUNDS = dict(rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once():
    """Benchmark keyword arguments for one-shot pipeline measurements."""
    return ROUNDS
