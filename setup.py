"""Setuptools shim.

The environment has no ``wheel`` package and no network access, so PEP 517
editable installs (which need ``bdist_wheel``) fail.  This shim enables the
legacy path: ``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
