"""Tests for all synthetic workload generators."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GenerationError
from repro.generators import (
    DEFAULT_LIBRARY,
    CircuitBuilder,
    Gate,
    GateLibrary,
    IndustrialSpec,
    PlantedGraphSpec,
    build_carry_lookahead_adder,
    build_decoder,
    build_dissolved_rom,
    build_multiplier,
    build_mux_tree,
    build_random_glue,
    build_ripple_carry_adder,
    default_bigblue1_like,
    generate_industrial,
    generate_ispd_like,
    planted_gtl_graph,
)
from repro.generators.ispd_like import EmbeddedStructure, IspdLikeSpec, ispd_like_suite
from repro.generators.structures import build_modular_glue
from repro.metrics import normalized_gtl_score
from repro.netlist.ops import connected_components, cut_size, group_stats
from repro.netlist.validate import validate_netlist


# ---------------------------------------------------------------- planted
def test_planted_graph_sizes():
    netlist, truth = planted_gtl_graph(3000, [100, 200], seed=0)
    assert netlist.num_cells == 3000
    assert [len(t) for t in truth] == [100, 200]
    validate_netlist(netlist)


def test_planted_blocks_disjoint():
    _, truth = planted_gtl_graph(3000, [100, 200, 150], seed=1)
    union = set()
    for block in truth:
        assert union.isdisjoint(block)
        union.update(block)


def test_planted_block_is_connected():
    netlist, truth = planted_gtl_graph(2000, [150], seed=2)
    from repro.finder.refine import is_connected_group

    assert is_connected_group(netlist, truth[0])


def test_planted_graph_connected_overall():
    netlist, _ = planted_gtl_graph(1000, [80], seed=3)
    assert len(connected_components(netlist)) == 1


def test_planted_block_cut_matches_spec():
    spec = PlantedGraphSpec(num_cells=2000, gtl_sizes=(150,), external_links=12)
    netlist, truth = planted_gtl_graph(2000, [150], seed=4, spec=spec)
    assert cut_size(netlist, truth[0]) <= 12  # some links may share nets


def test_planted_block_scores_low():
    netlist, truth = planted_gtl_graph(2000, [150], seed=5)
    assert normalized_gtl_score(netlist, truth[0], 0.8) < 0.3


def test_planted_graph_deterministic():
    n1, t1 = planted_gtl_graph(1000, [60], seed=9)
    n2, t2 = planted_gtl_graph(1000, [60], seed=9)
    assert n1 == n2
    assert t1 == t2


def test_planted_spec_validation():
    with pytest.raises(GenerationError):
        PlantedGraphSpec(num_cells=2, gtl_sizes=(1,))
    with pytest.raises(GenerationError):
        PlantedGraphSpec(num_cells=100, gtl_sizes=(2,))
    with pytest.raises(GenerationError):
        PlantedGraphSpec(num_cells=100, gtl_sizes=(60,))  # > half


def test_planted_spec_mismatch_rejected():
    spec = PlantedGraphSpec(num_cells=1000, gtl_sizes=(50,))
    with pytest.raises(GenerationError):
        planted_gtl_graph(2000, [50], spec=spec)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_property_planted_graph_valid(seed):
    rng = random.Random(seed)
    num_cells = rng.randint(200, 1500)
    sizes = [rng.randint(10, num_cells // 8) for _ in range(rng.randint(1, 3))]
    netlist, truth = planted_gtl_graph(num_cells, sizes, seed=seed)
    validate_netlist(netlist)
    assert sum(len(t) for t in truth) == sum(sizes)


# ---------------------------------------------------------------- library
def test_gate_pin_count():
    assert Gate("X", num_inputs=3).pin_count == 4


def test_library_lookup_and_unknown():
    assert DEFAULT_LIBRARY["NAND4"].pin_count == 5
    assert "INV" in DEFAULT_LIBRARY
    with pytest.raises(GenerationError):
        DEFAULT_LIBRARY["NOPE"]


def test_library_dynamic_wide_gates():
    lib = GateLibrary([Gate("INV", 1)])
    gate = lib.and_gate(7)
    assert gate.name == "AND7"
    assert gate.num_inputs == 7
    assert lib.or_gate(3).name == "OR3"
    with pytest.raises(GenerationError):
        lib.and_gate(1)


def test_complex_gates_are_pin_dense():
    """The paper's premise: complex cells give most pins per unit area."""
    nand4 = DEFAULT_LIBRARY["NAND4"]
    inv = DEFAULT_LIBRARY["INV"]
    assert nand4.pin_count / nand4.area > 1.5 * inv.pin_count / inv.area


# ---------------------------------------------------------------- circuit builder
def test_circuit_builder_basic():
    circuit = CircuitBuilder()
    a, b = circuit.new_wires(2)
    cell, (out,) = circuit.add_gate("NAND2", [a, b])
    netlist = circuit.finish(drop_dangling_wires=False)
    assert netlist.num_cells == 1
    assert netlist.cell_pin_count(cell) == 3
    assert circuit.gate_type(cell) == "NAND2"


def test_circuit_builder_drops_dangling():
    circuit = CircuitBuilder()
    a, b = circuit.new_wires(2)
    circuit.add_gate("NAND2", [a, b])
    netlist = circuit.finish()
    assert netlist.num_nets == 0  # each wire touches one cell only


def test_circuit_builder_too_many_inputs():
    circuit = CircuitBuilder()
    wires = circuit.new_wires(3)
    with pytest.raises(GenerationError):
        circuit.add_gate("INV", wires)


def test_circuit_builder_output_count_checked():
    circuit = CircuitBuilder()
    a = circuit.new_wire()
    with pytest.raises(GenerationError):
        circuit.add_gate("INV", [a], outputs=[circuit.new_wire(), circuit.new_wire()])


def test_circuit_builder_pad():
    circuit = CircuitBuilder()
    w = circuit.new_wire()
    a = circuit.new_wire()
    cell, _ = circuit.add_gate("BUF", [a], outputs=[w])
    pad = circuit.add_pad(w)
    netlist = circuit.finish()
    assert netlist.cell_is_fixed(pad)
    assert netlist.cell_pin_count(pad) == 1


def test_circuit_builder_connect_unknown_wire():
    circuit = CircuitBuilder()
    with pytest.raises(GenerationError):
        circuit.connect(5, 0)


def test_circuit_builder_duplicate_wire_names_ok():
    circuit = CircuitBuilder()
    w1 = circuit.new_wire("w")
    w2 = circuit.new_wire("w")
    a = circuit.new_wire()
    circuit.add_gate("BUF", [a], outputs=[w1])
    circuit.add_gate("BUF", [a], outputs=[w2])
    c1, _ = circuit.add_gate("INV", [w1])
    c2, _ = circuit.add_gate("INV", [w2])
    netlist = circuit.finish()
    assert netlist.num_nets >= 2  # both named wires materialized


# ---------------------------------------------------------------- structures
def _finish(circuit):
    netlist = circuit.finish()
    validate_netlist(netlist)
    return netlist


def test_ripple_carry_adder_size():
    circuit = CircuitBuilder()
    ports = build_ripple_carry_adder(circuit, 8)
    assert ports.size == 40  # 5 gates per bit
    assert len(ports.inputs) == 17
    assert len(ports.outputs) == 9
    _finish(circuit)


def test_cla_denser_than_rca():
    c1, c2 = CircuitBuilder(), CircuitBuilder()
    rca = build_ripple_carry_adder(c1, 16)
    cla = build_carry_lookahead_adder(c2, 16)
    assert cla.size > rca.size
    n1, n2 = _finish(c1), _finish(c2)
    assert n2.num_pins / n2.num_cells > n1.num_pins / n1.num_cells


def test_decoder_outputs():
    circuit = CircuitBuilder()
    ports = build_decoder(circuit, 4)
    assert len(ports.outputs) == 16
    assert ports.size == 4 + 16
    _finish(circuit)


def test_decoder_one_bit():
    circuit = CircuitBuilder()
    ports = build_decoder(circuit, 1)
    assert len(ports.outputs) == 2


def test_mux_tree_reduces_to_one():
    circuit = CircuitBuilder()
    ports = build_mux_tree(circuit, 9)
    assert len(ports.outputs) == 1
    assert ports.size == 8  # 9 inputs -> 8 MUX2
    _finish(circuit)


def test_dissolved_rom_structure():
    circuit = CircuitBuilder()
    ports = build_dissolved_rom(circuit, 5, 24, rng=1)
    assert len(ports.outputs) == 24
    assert ports.size > 5 + 32  # decoder + mesh + outputs
    netlist = _finish(circuit)
    # The ROM must be internally connected.
    from repro.finder.refine import is_connected_group

    assert is_connected_group(netlist, ports.cells)


def test_dissolved_rom_is_tangled():
    circuit = CircuitBuilder()
    ports = build_dissolved_rom(circuit, 5, 24, rng=1)
    glue = build_random_glue(circuit, 2000, rng=2)
    # Tie the ROM to the glue minimally so the score is meaningful.
    netlist = circuit.finish()
    score = normalized_gtl_score(netlist, ports.cells, 0.65)
    assert score < 0.5


def test_multiplier_structure():
    circuit = CircuitBuilder()
    ports = build_multiplier(circuit, 4)
    assert ports.size >= 16  # >= bits^2 partial products
    assert len(ports.outputs) == 8
    _finish(circuit)


def test_random_glue_size_and_determinism():
    c1, c2 = CircuitBuilder(), CircuitBuilder()
    g1 = build_random_glue(c1, 500, rng=5)
    g2 = build_random_glue(c2, 500, rng=5)
    assert g1.size == g2.size == 500
    assert _finish(c1) == _finish(c2)


def test_modular_glue_modules_score_average():
    circuit = CircuitBuilder()
    blocks = build_modular_glue(circuit, 4000, rng=3)
    netlist = circuit.finish()
    assert len(blocks) >= 4
    for block in blocks[1:4]:
        score = normalized_gtl_score(netlist, block.cells, 0.65)
        assert score > 0.5  # ordinary modules are not GTLs


def test_structure_param_validation():
    circuit = CircuitBuilder()
    with pytest.raises(GenerationError):
        build_decoder(circuit, 0)
    with pytest.raises(GenerationError):
        build_mux_tree(circuit, 1)
    with pytest.raises(GenerationError):
        build_ripple_carry_adder(circuit, 0)
    with pytest.raises(GenerationError):
        build_multiplier(circuit, 1)
    with pytest.raises(GenerationError):
        build_dissolved_rom(circuit, 4, 0)
    with pytest.raises(GenerationError):
        build_random_glue(circuit, 0)


def test_structure_explicit_inputs_must_match():
    circuit = CircuitBuilder()
    with pytest.raises(GenerationError):
        build_decoder(circuit, 3, inputs=circuit.new_wires(2))


# ---------------------------------------------------------------- composites
def test_ispd_like_generation():
    netlist, truth = generate_ispd_like(default_bigblue1_like(0.1), seed=1)
    validate_netlist(netlist)
    assert netlist.fixed_cells()  # pads exist
    assert len(truth) == 6
    union = set()
    for cells in truth.values():
        assert union.isdisjoint(cells)
        union.update(cells)


def test_ispd_like_suite_shapes():
    suite = ispd_like_suite(0.1)
    assert [s.name for s in suite] == [
        "bigblue1-like",
        "bigblue2-like",
        "bigblue3-like",
        "adaptec1-like",
        "adaptec2-like",
        "adaptec3-like",
    ]


def test_embedded_structure_validation():
    with pytest.raises(GenerationError):
        EmbeddedStructure("bogus", 4)
    with pytest.raises(GenerationError):
        EmbeddedStructure("rom", 1)


def test_ispd_spec_validation():
    with pytest.raises(GenerationError):
        IspdLikeSpec(name="x", glue_gates=5, structures=())
    with pytest.raises(GenerationError):
        IspdLikeSpec(name="x", glue_gates=100, structures=(), num_pads=2)
    with pytest.raises(GenerationError):
        IspdLikeSpec(name="x", glue_gates=100, structures=(), tap_fraction=2.0)


def test_industrial_generation():
    spec = IndustrialSpec(glue_gates=2000, rom_blocks=((4, 8), (4, 8)))
    netlist, truth = generate_industrial(spec, seed=2)
    validate_netlist(netlist)
    assert len(truth) == 2
    assert netlist.fixed_cells()
    for block in truth:
        score = normalized_gtl_score(netlist, block, 0.65)
        assert score < 0.6


def test_industrial_spec_validation():
    with pytest.raises(GenerationError):
        IndustrialSpec(glue_gates=10)
    with pytest.raises(GenerationError):
        IndustrialSpec(rom_blocks=())
    with pytest.raises(GenerationError):
        IndustrialSpec(rom_blocks=((1, 2),))
    with pytest.raises(GenerationError):
        IndustrialSpec(tap_fraction=1.5)


def test_industrial_deterministic():
    spec = IndustrialSpec(glue_gates=1500, rom_blocks=((4, 8),))
    n1, t1 = generate_industrial(spec, seed=4)
    n2, t2 = generate_industrial(spec, seed=4)
    assert n1 == n2
    assert t1 == t2
