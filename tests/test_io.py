"""Tests for Bookshelf, edge-list and hgr IO."""

import os

import pytest

from repro.errors import ParseError
from repro.generators import default_bigblue1_like, generate_ispd_like
from repro.io.bookshelf import read_bookshelf, write_bookshelf
from repro.io.edgelist import read_edgelist, write_edgelist
from repro.io.hgr import read_hgr, write_hgr
from repro.netlist.builder import NetlistBuilder
from repro.netlist.validate import validate_netlist


@pytest.fixture
def small_design():
    builder = NetlistBuilder()
    a = builder.add_cell("u1", area=2.0)
    b = builder.add_cell("u2")
    c = builder.add_cell("u3")
    p = builder.add_cell("p0", fixed=True)
    builder.add_net("n_a", [a, b, c])
    builder.add_net("n_b", [a, p])
    return builder.build()


# ---------------------------------------------------------------- bookshelf
def test_bookshelf_roundtrip(tmp_path, small_design):
    aux = write_bookshelf(small_design, str(tmp_path), "t")
    loaded, placement = read_bookshelf(aux)
    assert loaded.num_cells == small_design.num_cells
    assert loaded.num_nets == small_design.num_nets
    assert loaded.cell_is_fixed(loaded.cell_index("p0"))
    assert placement == {}
    validate_netlist(loaded)


def test_bookshelf_roundtrip_with_placement(tmp_path, small_design):
    coordinates = {i: (float(i), 2.0 * i) for i in range(small_design.num_cells)}
    aux = write_bookshelf(small_design, str(tmp_path), "t", placement=coordinates)
    loaded, placement = read_bookshelf(aux)
    for cell in range(loaded.num_cells):
        original = small_design.cell_name(cell)
        index = loaded.cell_index(original)
        assert placement[index] == pytest.approx(coordinates[cell])


def test_bookshelf_roundtrip_generated(tmp_path):
    netlist, _ = generate_ispd_like(default_bigblue1_like(0.05), seed=1)
    aux = write_bookshelf(netlist, str(tmp_path), "gen")
    loaded, _ = read_bookshelf(aux)
    assert loaded.num_cells == netlist.num_cells
    # Singleton nets are dropped on read; all >=2-pin nets survive.
    expected = sum(1 for n in range(netlist.num_nets) if netlist.net_degree(n) >= 2)
    assert loaded.num_nets == expected


def test_bookshelf_aux_missing_files(tmp_path):
    aux = tmp_path / "bad.aux"
    aux.write_text("RowBasedPlacement : only.wts\n")
    with pytest.raises(ParseError):
        read_bookshelf(str(aux))


def test_bookshelf_bad_net_degree_line(tmp_path):
    (tmp_path / "d.nodes").write_text("UCLA nodes 1.0\n a 1 1\n b 1 1\n")
    (tmp_path / "d.nets").write_text("UCLA nets 1.0\nNetDegree : X n0\n a I\n")
    (tmp_path / "d.aux").write_text("RowBasedPlacement : d.nodes d.nets\n")
    with pytest.raises(ParseError):
        read_bookshelf(str(tmp_path / "d.aux"))


def test_bookshelf_pin_outside_net(tmp_path):
    (tmp_path / "d.nodes").write_text("UCLA nodes 1.0\n a 1 1\n")
    (tmp_path / "d.nets").write_text("UCLA nets 1.0\n a I\n")
    (tmp_path / "d.aux").write_text("RowBasedPlacement : d.nodes d.nets\n")
    with pytest.raises(ParseError):
        read_bookshelf(str(tmp_path / "d.aux"))


def test_bookshelf_unknown_node_in_net(tmp_path):
    (tmp_path / "d.nodes").write_text("UCLA nodes 1.0\n a 1 1\n b 1 1\n")
    (tmp_path / "d.nets").write_text(
        "UCLA nets 1.0\nNetDegree : 2 n0\n a I\n ghost I\n"
    )
    (tmp_path / "d.aux").write_text("RowBasedPlacement : d.nodes d.nets\n")
    with pytest.raises(ParseError):
        read_bookshelf(str(tmp_path / "d.aux"))


def test_bookshelf_terminal_flag_and_area(tmp_path):
    (tmp_path / "d.nodes").write_text(
        "UCLA nodes 1.0\nNumNodes : 2\n a 4 2\n p 1 1 terminal\n"
    )
    (tmp_path / "d.nets").write_text(
        "UCLA nets 1.0\nNetDegree : 2 n0\n a I : 0 0\n p I : 0 0\n"
    )
    (tmp_path / "d.aux").write_text("RowBasedPlacement : d.nodes d.nets\n")
    loaded, _ = read_bookshelf(str(tmp_path / "d.aux"))
    assert loaded.cell_area(loaded.cell_index("a")) == pytest.approx(8.0)
    assert loaded.cell_is_fixed(loaded.cell_index("p"))


# ---------------------------------------------------------------- edgelist
def test_edgelist_roundtrip(tmp_path, triangle):
    path = str(tmp_path / "g.edges")
    write_edgelist(triangle, path)
    loaded = read_edgelist(path)
    assert loaded.num_cells == 3
    assert loaded.num_nets == 3


def test_edgelist_ignores_comments_and_self_loops(tmp_path):
    path = tmp_path / "g.edges"
    path.write_text("# comment\na b\na a\nb c # trailing\n")
    loaded = read_edgelist(str(path))
    assert loaded.num_cells == 3
    assert loaded.num_nets == 2


def test_edgelist_bad_line(tmp_path):
    path = tmp_path / "g.edges"
    path.write_text("justone\n")
    with pytest.raises(ParseError):
        read_edgelist(str(path))


def test_edgelist_expands_hyperedges(tmp_path, star_netlist):
    path = str(tmp_path / "s.edges")
    write_edgelist(star_netlist, path)
    loaded = read_edgelist(path)
    assert loaded.num_nets == 10  # C(5,2) clique expansion


# ---------------------------------------------------------------- hgr
def test_hgr_roundtrip(tmp_path, two_cliques):
    path = str(tmp_path / "g.hgr")
    write_hgr(two_cliques, path)
    loaded = read_hgr(path)
    assert loaded.num_cells == two_cliques.num_cells
    assert loaded.num_nets == two_cliques.num_nets
    for net in range(loaded.num_nets):
        assert loaded.cells_of_net(net) == two_cliques.cells_of_net(net)


def test_hgr_bad_header(tmp_path):
    path = tmp_path / "bad.hgr"
    path.write_text("notanumber\n")
    with pytest.raises(ParseError):
        read_hgr(str(path))


def test_hgr_wrong_net_count(tmp_path):
    path = tmp_path / "bad.hgr"
    path.write_text("2 3\n1 2\n")
    with pytest.raises(ParseError):
        read_hgr(str(path))


def test_hgr_out_of_range_cell(tmp_path):
    path = tmp_path / "bad.hgr"
    path.write_text("1 2\n1 5\n")
    with pytest.raises(ParseError):
        read_hgr(str(path))


def test_hgr_empty_file(tmp_path):
    path = tmp_path / "empty.hgr"
    path.write_text("")
    with pytest.raises(ParseError):
        read_hgr(str(path))


def test_hgr_comments(tmp_path):
    path = tmp_path / "c.hgr"
    path.write_text("% header comment\n1 2\n1 2 % a net\n")
    loaded = read_hgr(str(path))
    assert loaded.num_nets == 1
