"""Context transport: shared-memory / pack-file / pickle parity and hygiene.

The pool may ship a context as a pickled payload, a shared-memory
descriptor or a pack-file descriptor; all three must produce bit-identical
detection results, the descriptor paths must actually be small, and every
shared-memory segment must be released on shutdown.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory

import pytest

from repro.cli import main
from repro.finder import FinderConfig, TangledLogicFinder, find_tangled_logic
from repro.generators.random_gtl import planted_gtl_graph
from repro.io.binfmt import load_packed, serialize_netlist, write_packed
from repro.io.hgr import write_hgr
from repro.obs import trace
from repro.obs.report import RunReport
from repro.service.pool import (
    _MISSING_CONTEXT,
    _WORKER_CONTEXTS,
    _WORKER_SEGMENTS,
    PICKLE_TRANSPORT_ENV,
    WorkerPool,
    _worker_run_batch,
    transport_mode,
)

CFG = FinderConfig(num_seeds=8, seed=3)
CFG2 = FinderConfig(num_seeds=8, seed=3, workers=2)

# Under REPRO_PICKLE_TRANSPORT=1 or the scalar reference backend the pool
# (correctly) never uses descriptor transports, so tests asserting shm/file
# shipping would fail for the wrong reason.  Parity under the pickle path is
# covered by test_pickle_transport_matches_serial and the tier-1 CI leg that
# sets REPRO_PICKLE_TRANSPORT=1 for the whole suite.
requires_shared_transport = pytest.mark.skipif(
    transport_mode() != "shared",
    reason="descriptor transports are disabled in this configuration",
)


@pytest.fixture(scope="module")
def design():
    netlist, _ = planted_gtl_graph(900, [70], seed=9)
    return netlist


@pytest.fixture(scope="module")
def serial_report(design):
    return find_tangled_logic(design, CFG)


def _same_report(a, b):
    return (
        a.gtls == b.gtls
        and a.rent_exponent == b.rent_exponent
        and a.num_orderings == b.num_orderings
        and a.num_candidates == b.num_candidates
    )


# ---------------------------------------------------------------- mode switch
def test_transport_mode_switches(monkeypatch):
    monkeypatch.delenv(PICKLE_TRANSPORT_ENV, raising=False)
    monkeypatch.setenv("REPRO_SCALAR_BACKEND", "0")
    assert transport_mode() == "shared"
    monkeypatch.setenv(PICKLE_TRANSPORT_ENV, "1")
    assert transport_mode() == "pickle"
    monkeypatch.delenv(PICKLE_TRANSPORT_ENV)
    # The scalar reference backend works on tuples; shm views don't help it.
    monkeypatch.setenv("REPRO_SCALAR_BACKEND", "1")
    assert transport_mode() == "pickle"


# ---------------------------------------------------------------- parity
@requires_shared_transport
def test_shm_transport_matches_serial(design, serial_report):
    with WorkerPool(2) as pool:
        report = TangledLogicFinder(design, CFG2).run(pool=pool)
        assert _same_report(report, serial_report)
        assert pool.stats.shm_contexts >= 1
        assert pool.stats.shm_segments == 1
        assert pool.stats.pickle_contexts == 0
        # Descriptors, not payloads, cross the pickle channel per batch.
        per_batch = pool.stats.context_bytes / pool.stats.context_shipments
        assert per_batch < 4096
        assert pool.stats.shm_bytes == len(serialize_netlist(design))
    assert pool._segments == {}


def test_pickle_transport_matches_serial(design, serial_report, monkeypatch):
    monkeypatch.setenv(PICKLE_TRANSPORT_ENV, "1")
    with WorkerPool(2) as pool:
        report = TangledLogicFinder(design, CFG2).run(pool=pool)
        assert _same_report(report, serial_report)
        assert pool.stats.pickle_contexts >= 1
        assert pool.stats.shm_segments == 0
        per_batch = pool.stats.context_bytes / pool.stats.context_shipments
        assert per_batch > 10_000  # the full payload, linear in design size


@requires_shared_transport
def test_file_transport_matches_serial(design, serial_report, tmp_path):
    path = str(tmp_path / "design.nla")
    write_packed(design, path)
    packed = load_packed(path)
    with WorkerPool(2) as pool:
        report = TangledLogicFinder(packed, CFG2).run(pool=pool)
        assert _same_report(report, serial_report)
        # Workers mmap the pack file itself: no segment, tiny descriptor.
        assert pool.stats.file_contexts >= 1
        assert pool.stats.shm_segments == 0
        per_batch = pool.stats.context_bytes / pool.stats.context_shipments
        assert per_batch < 4096


def test_file_transport_requires_live_matching_file(design, tmp_path):
    path = str(tmp_path / "design.nla")
    write_packed(design, path)
    packed = load_packed(path)
    pool = WorkerPool(2)
    config_bytes = b""
    assert pool._file_context(packed, config_bytes) is not None
    # Replace the file with a different design: fingerprint mismatch.
    other, _ = planted_gtl_graph(120, [30], seed=1)
    write_packed(other, str(tmp_path / "other.nla"))
    os.replace(str(tmp_path / "other.nla"), path)
    assert pool._file_context(packed, config_bytes) is None
    os.remove(path)
    assert pool._file_context(packed, config_bytes) is None
    # Eager (parsed) netlists never qualify.
    assert pool._file_context(design, config_bytes) is None
    pool.shutdown()


def test_scalar_backend_forces_pickle_transport(design, serial_report, monkeypatch):
    monkeypatch.setenv("REPRO_SCALAR_BACKEND", "1")
    scalar_serial = find_tangled_logic(design, CFG)
    assert _same_report(scalar_serial, serial_report)
    with WorkerPool(2) as pool:
        report = TangledLogicFinder(design, CFG2).run(pool=pool)
        assert _same_report(report, serial_report)
        assert pool.stats.pickle_contexts >= 1
        assert pool.stats.shm_segments == 0


# ---------------------------------------------------------------- lifecycle
@requires_shared_transport
def test_shm_segments_unlinked_on_shutdown(design):
    pool = WorkerPool(2)
    TangledLogicFinder(design, CFG2).run(pool=pool)
    assert len(pool._segments) == 1
    name = next(iter(pool._segments.values()))[0].name
    pool.shutdown()
    assert pool._segments == {}
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


def test_worker_installs_and_evicts_shm_descriptors(design):
    """Drive the worker-side protocol in-process: descriptor install, LRU
    eviction closing the evicted context's segment mapping."""
    blob = serialize_netlist(design)
    segment = shared_memory.SharedMemory(create=True, size=len(blob))
    saved_contexts, saved_segments = dict(_WORKER_CONTEXTS), dict(_WORKER_SEGMENTS)
    _WORKER_CONTEXTS.clear()
    _WORKER_SEGMENTS.clear()
    try:
        segment.buf[: len(blob)] = blob
        import pickle

        descriptor = ("shm", segment.name, len(blob), pickle.dumps(CFG))
        assert _worker_run_batch("key-shm", [], context=None) == _MISSING_CONTEXT
        assert _worker_run_batch("key-shm", [], context=descriptor) == []
        netlist, config = _WORKER_CONTEXTS["key-shm"]
        assert netlist == design
        assert config == CFG
        assert "key-shm" in _WORKER_SEGMENTS
        # Flood the memo: the shm-backed context must be evicted and its
        # mapping closed without errors.
        for index in range(8):
            _worker_run_batch(f"bump{index}", [], context=(design, CFG))
        assert "key-shm" not in _WORKER_CONTEXTS
        assert "key-shm" not in _WORKER_SEGMENTS
    finally:
        _WORKER_CONTEXTS.clear()
        _WORKER_SEGMENTS.clear()
        _WORKER_CONTEXTS.update(saved_contexts)
        _WORKER_SEGMENTS.update(saved_segments)
        segment.close()
        segment.unlink()


# ---------------------------------------------------------------- telemetry
@requires_shared_transport
def test_transport_counters_surface_in_run_report(design):
    trace.enable()
    try:
        with trace.span("test.root"), WorkerPool(2) as pool:
            TangledLogicFinder(design, CFG2).run(pool=pool)
        report = RunReport.from_tracer()
    finally:
        trace.disable()
    counters = report.counters()
    assert counters.get("pool.shm_segments") == 1
    assert counters.get("pool.shm_bytes") == len(serialize_netlist(design))
    assert 0 < counters.get("pool.descriptor_bytes") < 8192
    assert counters.get("pool.context_bytes") >= counters["pool.descriptor_bytes"]
    tasks = [span for span in report.spans if span["name"] == "pool.task"]
    assert tasks
    assert all(span["attrs"].get("maxrss_kb", 0) > 0 for span in tasks)


# ---------------------------------------------------------------- CLI
def test_cli_pack_and_detect_from_packed(tmp_path, capsys, design):
    source = str(tmp_path / "design.hgr")
    write_hgr(design, source)
    packed = str(tmp_path / "design.nla")
    assert main(["pack", source, "--out", packed]) == 0
    out = capsys.readouterr().out
    assert "fingerprint:" in out
    assert os.path.exists(packed)

    membership_a = str(tmp_path / "a.txt")
    membership_b = str(tmp_path / "b.txt")
    assert main([
        "find-gtl", source, "--seeds", "6", "--seed", "3", "--out", membership_a,
    ]) == 0
    assert main([
        "find-gtl", packed, "--seeds", "6", "--seed", "3", "--out", membership_b,
    ]) == 0
    with open(membership_a) as a, open(membership_b) as b:
        assert a.read() == b.read()


def test_cli_pack_default_output_path(tmp_path, capsys, design):
    source = str(tmp_path / "design.hgr")
    write_hgr(design, source)
    assert main(["pack", source]) == 0
    assert os.path.exists(str(tmp_path / "design.nla"))


# ----------------------------------------------------------------------
# Idle worker death: lazy respawn instead of a failed next task
# ----------------------------------------------------------------------
def test_pool_respawns_after_idle_worker_death(design, serial_report):
    """A worker killed BETWEEN jobs is replaced lazily on the next run.

    This is the daemon scenario: the pool sits warm for hours and a worker
    gets OOM-killed while idle.  The next submitted job must transparently
    rebuild the executor — not fail — and the rebuild must be recorded as a
    respawn, never as a retry-consuming restart.
    """
    import os
    import signal
    import time

    with WorkerPool(2) as pool:
        first = TangledLogicFinder(design, CFG2).run(pool=pool)
        assert _same_report(first, serial_report)
        assert pool.stats.respawns == 0

        processes = dict(pool._executor._processes)
        victim = next(iter(processes.values()))
        os.kill(victim.pid, signal.SIGKILL)
        deadline = time.monotonic() + 10
        while victim.is_alive() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not victim.is_alive()

        second = TangledLogicFinder(design, CFG2).run(pool=pool)
        assert _same_report(second, serial_report)
        assert pool.stats.respawns == 1
        assert pool.stats.restarts == 0  # never billed against max_retries


def test_pool_workers_dead_is_false_for_healthy_pool(design):
    with WorkerPool(2) as pool:
        assert pool._workers_dead() is False  # no executor yet
        TangledLogicFinder(design, CFG2).run(pool=pool)
        assert pool._workers_dead() is False  # live workers
    assert pool._workers_dead() is False  # shut down: nothing to respawn
