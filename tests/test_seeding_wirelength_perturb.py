"""Tests for seeding strategies, wirelength models and perturbation."""

import numpy as np
import pytest

from repro.errors import FinderError, GenerationError, ReproError
from repro.finder import FinderConfig, find_tangled_logic
from repro.finder.seeding import (
    STRATEGIES,
    clustering_seeds,
    draw_seeds,
    pin_density_seeds,
    stratified_seeds,
    uniform_seeds,
)
from repro.generators.perturb import rewire_pins
from repro.generators.random_gtl import planted_gtl_graph
from repro.netlist.builder import NetlistBuilder
from repro.netlist.validate import validate_netlist
from repro.placement import Die
from repro.placement.placer import Placement
from repro.routing.wirelength import (
    clique_net,
    hpwl_net,
    rmst_net,
    star_net,
    total_wirelength,
    wirelength_report,
)


# ---------------------------------------------------------------- seeding
def test_draw_seeds_all_strategies(small_planted):
    netlist, _ = small_planted
    eligible = netlist.movable_cells()
    for strategy in STRATEGIES:
        seeds = draw_seeds(netlist, eligible, 12, strategy=strategy, rng=1)
        assert len(seeds) == 12
        assert all(s in set(eligible) for s in seeds)


def test_draw_seeds_validation(small_planted):
    netlist, _ = small_planted
    with pytest.raises(FinderError):
        draw_seeds(netlist, netlist.movable_cells(), 4, strategy="bogus")
    with pytest.raises(FinderError):
        draw_seeds(netlist, [], 4)
    with pytest.raises(FinderError):
        draw_seeds(netlist, netlist.movable_cells(), 0)


def test_uniform_seeds_distinct_when_possible(small_planted):
    netlist, _ = small_planted
    seeds = uniform_seeds(netlist, list(range(100)), 50, rng=2)
    assert len(set(seeds)) == 50


def test_pin_density_bias(small_planted):
    """Pin-dense planted cells are drawn far above their population share."""
    netlist, truth = small_planted
    block = truth[0]
    seeds = pin_density_seeds(netlist, netlist.movable_cells(), 400, rng=3)
    in_block = sum(1 for s in seeds if s in block)
    share = len(block) / netlist.num_cells
    assert in_block / 400 > 1.5 * share


def test_stratified_covers_strata(small_planted):
    netlist, _ = small_planted
    eligible = list(range(netlist.num_cells))
    seeds = stratified_seeds(netlist, eligible, 10, rng=4)
    assert len(seeds) == 10
    strata = {s * 10 // netlist.num_cells for s in seeds}
    assert len(strata) >= 8  # nearly one seed per stratum


def test_clustering_seeds_returns_valid(small_planted):
    netlist, _ = small_planted
    seeds = clustering_seeds(netlist, netlist.movable_cells()[:500], 8, rng=5)
    assert len(seeds) == 8


def test_finder_with_strategy_finds_block(small_planted):
    netlist, truth = small_planted
    config = FinderConfig(num_seeds=10, seed=6, seed_strategy="pin_density")
    report = find_tangled_logic(netlist, config)
    assert any(g.cells == truth[0] for g in report.gtls)


def test_config_rejects_bad_strategy():
    with pytest.raises(FinderError):
        FinderConfig(seed_strategy="nope")


# ---------------------------------------------------------------- wirelength
@pytest.fixture
def two_pin_placement():
    builder = NetlistBuilder()
    a, b = builder.add_cells(2)
    builder.add_net("n", [a, b])
    netlist = builder.build()
    return Placement(
        netlist=netlist,
        die=Die(10, 10),
        x=np.array([1.0, 4.0]),
        y=np.array([2.0, 6.0]),
    )


def test_two_pin_models_agree(two_pin_placement):
    # For 2 pins all models equal the Manhattan distance 3 + 4 = 7.
    assert hpwl_net(two_pin_placement, 0) == pytest.approx(7.0)
    assert rmst_net(two_pin_placement, 0) == pytest.approx(7.0)
    assert clique_net(two_pin_placement, 0) == pytest.approx(7.0)
    assert star_net(two_pin_placement, 0) == pytest.approx(7.0)


@pytest.fixture
def square_net_placement():
    builder = NetlistBuilder()
    cells = builder.add_cells(4)
    builder.add_net("sq", cells)
    netlist = builder.build()
    return Placement(
        netlist=netlist,
        die=Die(10, 10),
        x=np.array([0.0, 2.0, 0.0, 2.0]),
        y=np.array([0.0, 0.0, 2.0, 2.0]),
    )


def test_square_net_model_ladder(square_net_placement):
    """HPWL <= RMST for multi-pin nets; known values on a unit square."""
    hp = hpwl_net(square_net_placement, 0)
    tree = rmst_net(square_net_placement, 0)
    assert hp == pytest.approx(4.0)
    assert tree == pytest.approx(6.0)  # three sides of the square
    assert hp <= tree


def test_total_wirelength_and_report(square_net_placement):
    report = wirelength_report(square_net_placement)
    assert set(report) == {"hpwl", "star", "clique", "rmst"}
    assert report["hpwl"] == pytest.approx(4.0)
    assert total_wirelength(square_net_placement, "rmst") == pytest.approx(6.0)


def test_total_wirelength_matches_placement_hpwl(small_planted):
    netlist, _ = small_planted
    rng = np.random.default_rng(0)
    placement = Placement(
        netlist=netlist,
        die=Die(100, 100),
        x=rng.uniform(0, 100, netlist.num_cells),
        y=rng.uniform(0, 100, netlist.num_cells),
    )
    assert total_wirelength(placement, "hpwl") == pytest.approx(placement.hpwl())


def test_rmst_upper_bounds_hpwl_randomized(small_planted):
    netlist, _ = small_planted
    rng = np.random.default_rng(1)
    placement = Placement(
        netlist=netlist,
        die=Die(100, 100),
        x=rng.uniform(0, 100, netlist.num_cells),
        y=rng.uniform(0, 100, netlist.num_cells),
    )
    for net in range(0, 50):
        assert rmst_net(placement, net) >= hpwl_net(placement, net) - 1e-9


def test_unknown_model_rejected(two_pin_placement):
    with pytest.raises(ReproError):
        total_wirelength(two_pin_placement, "steiner-exact")


# ---------------------------------------------------------------- perturb
def test_rewire_zero_noise_is_structural_noop(small_planted):
    netlist, _ = small_planted
    same = rewire_pins(netlist, 0.0, rng=1)
    assert same.num_cells == netlist.num_cells
    assert same.num_nets == netlist.num_nets
    for net in range(netlist.num_nets):
        assert set(same.cells_of_net(net)) == set(netlist.cells_of_net(net))


def test_rewire_changes_some_pins(small_planted):
    netlist, _ = small_planted
    noisy = rewire_pins(netlist, 0.1, rng=2)
    validate_netlist(noisy)
    changed = sum(
        1
        for net in range(min(netlist.num_nets, noisy.num_nets))
        if set(noisy.cells_of_net(net)) != set(netlist.cells_of_net(net))
    )
    assert changed > 0
    assert noisy.num_cells == netlist.num_cells


def test_rewire_validation(small_planted):
    netlist, _ = small_planted
    with pytest.raises(GenerationError):
        rewire_pins(netlist, 1.5)


def test_rewire_full_noise_still_valid(small_planted):
    netlist, _ = small_planted
    scrambled = rewire_pins(netlist, 1.0, rng=3)
    validate_netlist(scrambled)
