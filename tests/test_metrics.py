"""Tests for all cluster metrics (baselines + GTL scores)."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MetricError
from repro.metrics import (
    ScoreContext,
    absorption,
    degree_separation,
    density_aware_gtl_score,
    estimate_group_rent_exponent,
    estimate_rent_exponent_from_prefixes,
    fit_rent_exponent,
    gtl_score,
    net_cut,
    normalized_gtl_score,
    ratio_cut,
    rent_metric,
    scaled_cost,
)
from repro.metrics.rent import rent_exponent_from_stats, scan_prefix_stats
from repro.netlist.builder import NetlistBuilder
from repro.netlist.ops import GroupStats, group_stats


# ---------------------------------------------------------------- cut
def test_net_cut(two_cliques):
    assert net_cut(two_cliques, range(4)) == 1
    assert net_cut(two_cliques, range(8)) == 0


def test_absorption_full_netlist(two_cliques):
    # Every net fully absorbed -> absorption equals net count.
    assert absorption(two_cliques, range(8)) == pytest.approx(13.0)


def test_absorption_partial(star_netlist):
    # 3 of 5 pins inside the single 5-pin net: (3-1)/(5-1) = 0.5.
    assert absorption(star_netlist, [0, 1, 2]) == pytest.approx(0.5)


def test_absorption_grows_with_size(two_cliques):
    small = absorption(two_cliques, range(3))
    large = absorption(two_cliques, range(6))
    assert large > small  # the bias the paper criticizes


def test_absorption_empty_raises(triangle):
    with pytest.raises(MetricError):
        absorption(triangle, [])


# ---------------------------------------------------------------- ratio cut
def test_ratio_cut(two_cliques):
    assert ratio_cut(two_cliques, range(4)) == pytest.approx(0.25)


def test_ratio_cut_empty_raises(triangle):
    with pytest.raises(MetricError):
        ratio_cut(triangle, [])


def test_scaled_cost(two_cliques):
    assert scaled_cost(two_cliques, range(4)) == pytest.approx(1 / 16)


def test_scaled_cost_whole_netlist_raises(triangle):
    with pytest.raises(MetricError):
        scaled_cost(triangle, range(3))


def test_rent_metric(two_cliques):
    assert rent_metric(two_cliques, range(4)) == pytest.approx(
        math.log(1) / math.log(4)
    )


def test_rent_metric_zero_cut_is_neg_inf(two_cliques):
    assert rent_metric(two_cliques, range(8)) == float("-inf")


def test_rent_metric_small_group_raises(triangle):
    with pytest.raises(MetricError):
        rent_metric(triangle, [0])


# ---------------------------------------------------------------- rent
def test_group_rent_exponent_matches_formula(two_cliques):
    stats = group_stats(two_cliques, range(4))
    expected = (math.log(stats.cut) - math.log(stats.avg_pins)) / math.log(4)
    assert estimate_group_rent_exponent(two_cliques, range(4)) == pytest.approx(
        expected
    )


def test_rent_exponent_from_stats_degenerate():
    with pytest.raises(MetricError):
        rent_exponent_from_stats(GroupStats(1, 1, 1, 0, 1.0))
    with pytest.raises(MetricError):
        rent_exponent_from_stats(GroupStats(4, 0, 8, 2, 2.0))
    with pytest.raises(MetricError):
        rent_exponent_from_stats(GroupStats(4, 2, 0, 2, 0.0))


def test_estimate_from_prefixes_clamps_and_averages():
    stats = [
        GroupStats(size=16, cut=8, pins=48, internal_nets=4, avg_pins=3.0),
        GroupStats(size=64, cut=20, pins=192, internal_nets=30, avg_pins=3.0),
    ]
    value = estimate_rent_exponent_from_prefixes(stats, min_size=8)
    assert 0.1 <= value <= 1.0


def test_estimate_from_prefixes_empty_defaults():
    assert estimate_rent_exponent_from_prefixes([]) == pytest.approx(0.6)


def test_estimate_from_prefixes_skips_small():
    tiny = [GroupStats(size=2, cut=3, pins=6, internal_nets=0, avg_pins=3.0)]
    assert estimate_rent_exponent_from_prefixes(tiny, min_size=8) == pytest.approx(0.6)


def test_fit_rent_exponent_recovers_synthetic_law():
    sizes = [2**k for k in range(3, 12)]
    cuts = [round(3.0 * s**0.65) for s in sizes]
    p, a = fit_rent_exponent(sizes, cuts)
    assert p == pytest.approx(0.65, abs=0.02)
    assert a == pytest.approx(3.0, rel=0.15)


def test_fit_rent_exponent_needs_two_points():
    with pytest.raises(MetricError):
        fit_rent_exponent([10], [5])
    with pytest.raises(MetricError):
        fit_rent_exponent([10, 10], [5, 5])


def test_scan_prefix_stats(two_cliques):
    stats = scan_prefix_stats(two_cliques, list(range(8)))
    assert len(stats) == 8
    assert stats[-1].cut == 0


# ---------------------------------------------------------------- DS metric
def test_degree_separation_clique(two_cliques):
    # Inside one clique: degree avg = (3+3+3+4)/4 = 3.25, separation 1.
    value = degree_separation(two_cliques, range(4))
    assert value == pytest.approx(3.25)


def test_degree_separation_path():
    builder = NetlistBuilder()
    cells = builder.add_cells(4)
    for a, b in zip(cells, cells[1:]):
        builder.add_net(None, [a, b])
    netlist = builder.build()
    value = degree_separation(netlist, cells)
    # degree avg = (1+2+2+1)/4 = 1.5; separation = avg pairwise dist
    distances = [1, 2, 3, 1, 2, 1]
    separation = sum(distances) * 2 / 12
    assert value == pytest.approx(1.5 / separation)


def test_degree_separation_disconnected_is_zero():
    builder = NetlistBuilder()
    a, b, c, d = builder.add_cells(4)
    builder.add_net("n1", [a, b])
    builder.add_net("n2", [c, d])
    assert degree_separation(builder.build(), [a, b, c, d]) == 0.0


def test_degree_separation_small_group_raises(triangle):
    with pytest.raises(MetricError):
        degree_separation(triangle, [0])


def test_degree_separation_sampled_close_to_exact(small_planted):
    netlist, truth = small_planted
    members = sorted(truth[0])[:120]
    exact = degree_separation(netlist, members, max_sources=len(members))
    sampled = degree_separation(netlist, members, max_sources=40, rng=1)
    assert sampled == pytest.approx(exact, rel=0.25)


# ---------------------------------------------------------------- GTL scores
def test_gtl_score_formula(two_cliques):
    assert gtl_score(two_cliques, range(4), 0.5) == pytest.approx(1 / 4**0.5)


def test_normalized_gtl_score_formula(two_cliques):
    a_g = two_cliques.average_pins_per_cell
    expected = 1 / (a_g * 4**0.5)
    assert normalized_gtl_score(two_cliques, range(4), 0.5) == pytest.approx(expected)


def test_density_aware_score_formula(two_cliques):
    stats = group_stats(two_cliques, range(4))
    a_g = two_cliques.average_pins_per_cell
    exponent = 0.5 * stats.avg_pins / a_g
    expected = stats.cut / (a_g * stats.size**exponent)
    assert density_aware_gtl_score(two_cliques, range(4), 0.5) == pytest.approx(
        expected
    )


def test_gtl_score_bad_exponent(two_cliques):
    with pytest.raises(MetricError):
        gtl_score(two_cliques, range(4), 0.0)
    with pytest.raises(MetricError):
        gtl_score(two_cliques, range(4), 2.5)


def test_score_context_validation():
    with pytest.raises(MetricError):
        ScoreContext(rent_exponent=0.6, avg_pins_per_cell=3.0, metric="bogus")
    with pytest.raises(MetricError):
        ScoreContext(rent_exponent=-1.0, avg_pins_per_cell=3.0)
    with pytest.raises(MetricError):
        ScoreContext(rent_exponent=0.6, avg_pins_per_cell=0.0)


def test_score_context_matches_functions(two_cliques):
    stats = group_stats(two_cliques, range(4))
    for metric, function in (
        ("gtl_s", gtl_score),
        ("ngtl_s", normalized_gtl_score),
        ("gtl_sd", density_aware_gtl_score),
    ):
        context = ScoreContext.for_netlist(two_cliques, 0.6, metric=metric)
        assert context.score(stats) == pytest.approx(
            function(two_cliques, range(4), 0.6)
        )


def test_score_context_score_all(two_cliques):
    context = ScoreContext.for_netlist(two_cliques, 0.6)
    stats = [group_stats(two_cliques, range(k)) for k in (2, 4, 6)]
    assert len(context.score_all(stats)) == 3


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_property_scores_scale_invariance(seed):
    """nGTL-S is GTL-S / A_G; GTL-SD equals nGTL-S for average density."""
    rng = random.Random(seed)
    builder = NetlistBuilder()
    cells = builder.add_cells(rng.randint(6, 30))
    for i in range(rng.randint(5, 40)):
        builder.add_net(f"n{i}", rng.sample(cells, rng.randint(2, 4)))
    netlist = builder.build()
    group = rng.sample(cells, rng.randint(2, len(cells) - 1))
    p = rng.uniform(0.3, 0.9)
    gs = gtl_score(netlist, group, p)
    ngs = normalized_gtl_score(netlist, group, p)
    assert ngs == pytest.approx(gs / netlist.average_pins_per_cell)


def test_planted_gtl_scores_below_one(small_planted):
    """The planted block must score far below an average group."""
    netlist, truth = small_planted
    block = truth[0]
    score = normalized_gtl_score(netlist, block, 0.7)
    assert score < 0.3
    sd = density_aware_gtl_score(netlist, block, 0.7)
    assert sd < score  # density awareness sharpens the minimum


def test_random_group_scores_near_one(small_planted):
    netlist, truth = small_planted
    rng = random.Random(0)
    outside = [c for c in range(netlist.num_cells) if c not in truth[0]]
    group = rng.sample(outside, 200)
    score = normalized_gtl_score(netlist, group, 0.9)
    assert 0.5 < score < 2.5
