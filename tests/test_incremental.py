"""Tests for repro.incremental: deltas, dirty regions, patched reports.

Covers the delta codec and diff/apply inverse property, dirty-region
expansion (both backends), seed-trace persistence, the incremental-vs-
full-recompute parity invariant, the store-backed reuse ladder, the
moving-pin perturbation model and the benchmark regression warning.
"""

import importlib.util
import json
import logging
import math
import os
import pathlib

import pytest

from repro.errors import (
    GenerationError,
    NetlistError,
    ServiceError,
)
from repro.finder.config import FinderConfig
from repro.generators.perturb import rewire_pins
from repro.generators.random_gtl import planted_gtl_graph
from repro.incremental import (
    CellEdit,
    NetEdit,
    NetlistDelta,
    SeedTrace,
    apply_delta,
    delta_endpoint_cells,
    delta_fingerprint,
    detect_with_reuse,
    design_path,
    diff,
    dirty_region,
    expand_frontier,
    incremental_detect,
    load_trace,
    run_traced,
)
from repro.incremental.engine import (
    KIND_FINDER_TRACE,
    KIND_INCREMENTAL_HEAD,
    KIND_INCREMENTAL_PROVENANCE,
    _head_key,
    _trace_key,
)
from repro.netlist.backend import forced_backend
from repro.netlist.builder import NetlistBuilder
from repro.service.codec import report_to_dict
from repro.service.fingerprint import (
    fingerprint_config,
    fingerprint_netlist,
    job_fingerprint,
)
from repro.service.store import ResultStore

BACKENDS = ("numpy", "python")

#: Small pinned config: footprints cover a slice of the graph, not all of it.
CFG = FinderConfig(num_seeds=8, max_order_length=20, seed=5)


@pytest.fixture(scope="module")
def base():
    netlist, _ = planted_gtl_graph(1500, [60], seed=3)
    return netlist


def _strip(report):
    payload = report_to_dict(report)
    payload.pop("runtime_seconds", None)
    return payload


# ---------------------------------------------------------------- diff/apply
@pytest.mark.parametrize("backend", BACKENDS)
def test_diff_identical_netlists_is_empty(base, backend):
    delta = diff(base, base, backend=backend)
    assert delta.is_empty
    assert delta.num_edits == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_diff_apply_inverse_on_rewire(base, backend):
    with forced_backend(backend):
        edited, emitted = rewire_pins(base, 0.02, rng=9, return_delta=True)
        delta = diff(base, edited)
    assert not delta.is_empty
    assert delta == emitted  # the perturbation emits exactly what diff sees
    rebuilt = apply_delta(base, delta)
    assert fingerprint_netlist(rebuilt) == fingerprint_netlist(edited)


def _toy():
    builder = NetlistBuilder()
    a = builder.add_cell("a", area=1.0)
    b = builder.add_cell("b", area=2.0)
    c = builder.add_cell("c")
    d = builder.add_cell("d", fixed=True)
    builder.add_net("n1", [a, b])
    builder.add_net("n2", [b, c, d])
    builder.add_net("n3", [a, c])
    return builder.build()


def test_diff_attribute_change():
    old = _toy()
    builder = NetlistBuilder()
    builder.add_cell("a", area=1.0)
    builder.add_cell("b", area=7.5)  # changed
    builder.add_cell("c")
    builder.add_cell("d", fixed=True)
    builder.add_net("n1", [0, 1])
    builder.add_net("n2", [1, 2, 3])
    builder.add_net("n3", [0, 2])
    new = builder.build()
    for backend in BACKENDS:
        delta = diff(old, new, backend=backend)
        assert [c.name for c in delta.cells_changed] == ["b"]
        assert delta.cells_changed[0].area == 7.5
        assert not delta.nets_changed
        assert fingerprint_netlist(apply_delta(old, delta)) == \
            fingerprint_netlist(new)


def test_diff_cell_removal_remaps_surviving_nets():
    """Removing a cell shifts every later index; apply must remap by name."""
    old = _toy()
    builder = NetlistBuilder()
    builder.add_cell("b", area=2.0)
    builder.add_cell("c")
    builder.add_cell("d", fixed=True)
    builder.add_net("n2", [0, 1, 2])  # b, c, d — survives untouched by name
    new = builder.build()
    delta = diff(old, new)
    assert delta.cells_removed == ("a",)
    assert {n.name for n in delta.nets_removed} == {"n1", "n3"}
    rebuilt = apply_delta(old, delta)
    assert fingerprint_netlist(rebuilt) == fingerprint_netlist(new)


def test_diff_cell_and_net_addition():
    old = _toy()
    builder = NetlistBuilder()
    for index in range(old.num_cells):
        builder.add_cell(
            old.cell_name(index), area=old.cell_area(index),
            fixed=old.cell_is_fixed(index),
        )
    e = builder.add_cell("e", area=3.0)
    builder.add_net("n1", [0, 1])
    builder.add_net("n2", [1, 2, 3])
    builder.add_net("n3", [0, 2])
    builder.add_net("n4", [e, 0])
    new = builder.build()
    delta = diff(old, new)
    assert [c.name for c in delta.cells_added] == ["e"]
    assert [n.name for n in delta.nets_added] == ["n4"]
    assert delta.nets_added[0].new_members == ("e", "a")
    assert fingerprint_netlist(apply_delta(old, delta)) == \
        fingerprint_netlist(new)


def test_diff_reorder_degrades_to_full_replacement():
    old = _toy()
    builder = NetlistBuilder()
    builder.add_cell("b", area=2.0)  # "b" before "a": relative order broken
    builder.add_cell("a", area=1.0)
    builder.add_cell("c")
    builder.add_cell("d", fixed=True)
    builder.add_net("n1", [1, 0])
    builder.add_net("n2", [0, 2, 3])
    builder.add_net("n3", [1, 2])
    new = builder.build()
    delta = diff(old, new)
    assert len(delta.cells_removed) == old.num_cells
    assert len(delta.cells_added) == new.num_cells
    assert fingerprint_netlist(apply_delta(old, delta)) == \
        fingerprint_netlist(new)


def test_delta_codec_roundtrip(base):
    _, delta = rewire_pins(base, 0.02, rng=4, return_delta=True)
    wire = json.loads(json.dumps(delta.to_dict()))
    assert NetlistDelta.from_dict(wire) == delta
    with pytest.raises(NetlistError, match="version"):
        NetlistDelta.from_dict({"version": 999})
    with pytest.raises(NetlistError):
        NetlistDelta.from_dict([1, 2, 3])


def test_delta_fingerprint_chains_base_and_edit(base):
    _, d1 = rewire_pins(base, 0.02, rng=4, return_delta=True)
    _, d2 = rewire_pins(base, 0.02, rng=5, return_delta=True)
    fp = fingerprint_netlist(base)
    assert delta_fingerprint(fp, d1) == delta_fingerprint(fp, d1)
    assert delta_fingerprint(fp, d1) != delta_fingerprint(fp, d2)
    assert delta_fingerprint("other-base", d1) != delta_fingerprint(fp, d1)


# ---------------------------------------------------------------- dirty region
def test_dirty_endpoints_cover_both_sides_of_a_rewire():
    old = _toy()
    delta = NetlistDelta(
        cells_changed=(
            CellEdit("a", 1.0, old.cell_pin_count(0) - 1, False),
            CellEdit("c", 1.0, old.cell_pin_count(2) + 1, False),
        ),
        nets_changed=(NetEdit("n1", ("a", "b"), ("c", "b")),),
    )
    new = apply_delta(old, delta)
    endpoints = delta_endpoint_cells(new, delta)
    # Losing cell "a", gaining cell "c", and untouched co-member "b".
    assert {new.cell_name(i) for i in endpoints} == {"a", "b", "c"}


@pytest.mark.parametrize("backend", BACKENDS)
def test_dirty_region_halo_is_monotonic(base, backend):
    edited, delta = rewire_pins(base, 0.001, rng=2, return_delta=True)
    with forced_backend(backend):
        r0 = dirty_region(edited, delta, halo=0)
        r1 = dirty_region(edited, delta, halo=1)
    assert r0.hops == 1 and r1.hops == 2
    assert r0.cells <= r1.cells
    assert 0.0 < r0.fraction <= r1.fraction <= 1.0
    with pytest.raises(NetlistError):
        dirty_region(edited, delta, halo=-1)


def test_expand_frontier_backends_agree(base):
    seed_cells = {3, 77, 191}
    for hops in (0, 1, 2):
        numpy_region = expand_frontier(base, seed_cells, hops, backend="numpy")
        scalar_region = expand_frontier(base, seed_cells, hops, backend="python")
        assert numpy_region == scalar_region
        assert seed_cells <= numpy_region


# ---------------------------------------------------------------- seed traces
def test_run_traced_codec_roundtrip(base):
    report, seed_trace = run_traced(base, CFG)
    assert len(seed_trace.jobs) == CFG.num_seeds
    assert len(seed_trace.outcomes) == CFG.num_seeds
    assert all(outcome[3] for outcome in seed_trace.outcomes)  # footprints
    wire = json.loads(json.dumps(seed_trace.to_dict()))
    restored = SeedTrace.from_dict(wire)
    assert restored.netlist_fingerprint == seed_trace.netlist_fingerprint
    assert restored.jobs == seed_trace.jobs
    assert fingerprint_config(restored.config) == fingerprint_config(CFG)
    for ours, theirs in zip(seed_trace.outcomes, restored.outcomes):
        assert ours[0] == theirs[0]
        assert (ours[1] == theirs[1]) or (
            math.isnan(ours[1]) and math.isnan(theirs[1])
        )
        assert ours[2:] == theirs[2:]
    with pytest.raises(ServiceError, match="seed-trace"):
        SeedTrace.from_dict({"version": -1})


# ---------------------------------------------------------------- parity
@pytest.mark.parametrize("backend", BACKENDS)
def test_incremental_matches_cold_run(base, backend):
    """The invariant: a patched report is bit-identical to a cold run."""
    with forced_backend(backend):
        _, seed_trace = run_traced(base, CFG)
        edited, delta = rewire_pins(base, 0.001, rng=1, return_delta=True)
        result = incremental_detect(base, edited, seed_trace, CFG)
        cold, _ = run_traced(edited, CFG)
    assert result.mode == "incremental"
    # Strict inequality: some seeds were genuinely replayed from the trace.
    assert 0 < result.seeds_recomputed < result.seeds_total
    assert _strip(result.report) == _strip(cold)
    # The emitted trace must equal a cold trace: the chain stays exact.
    assert result.trace.netlist_fingerprint == fingerprint_netlist(edited)
    assert result.base_fingerprint == fingerprint_netlist(base)
    assert result.delta_fingerprint == delta_fingerprint(
        fingerprint_netlist(base), delta
    )


def test_incremental_accepts_precomputed_delta(base):
    _, seed_trace = run_traced(base, CFG)
    edited, delta = rewire_pins(base, 0.001, rng=1, return_delta=True)
    implicit = incremental_detect(base, edited, seed_trace, CFG)
    explicit = incremental_detect(base, edited, seed_trace, CFG, delta=delta)
    assert _strip(explicit.report) == _strip(implicit.report)
    assert explicit.delta_fingerprint == implicit.delta_fingerprint


def test_incremental_chains_across_two_edits(base):
    """delta fingerprints chain: base -> edit1 -> edit2, parity at each hop."""
    _, trace0 = run_traced(base, CFG)
    edit1, _ = rewire_pins(base, 0.001, rng=1, return_delta=True)
    step1 = incremental_detect(base, edit1, trace0, CFG)
    edit2, _ = rewire_pins(edit1, 0.001, rng=2, return_delta=True)
    step2 = incremental_detect(edit1, edit2, step1.trace, CFG)
    cold, _ = run_traced(edit2, CFG)
    assert step2.mode == "incremental"
    assert step2.base_fingerprint == fingerprint_netlist(edit1)
    assert _strip(step2.report) == _strip(cold)


def test_incremental_validation_errors(base):
    _, seed_trace = run_traced(base, CFG)
    edited = rewire_pins(base, 0.001, rng=1)
    other, _ = planted_gtl_graph(500, [50], seed=21)
    with pytest.raises(ServiceError, match="does not belong"):
        incremental_detect(other, edited, seed_trace, CFG)
    with pytest.raises(ServiceError, match="different finder config"):
        incremental_detect(
            base, edited, seed_trace, FinderConfig(num_seeds=9, seed=5)
        )
    with pytest.raises(ServiceError, match="pinned"):
        incremental_detect(
            base, edited, seed_trace,
            FinderConfig(num_seeds=8, max_order_length=20, seed=None),
        )


# ---------------------------------------------------------------- fallbacks
def test_fallback_on_cell_set_change(base):
    _, seed_trace = run_traced(base, CFG)
    builder = NetlistBuilder()
    for index in range(base.num_cells):
        builder.add_cell(base.cell_name(index), area=base.cell_area(index))
    extra = builder.add_cell("brand_new_cell")
    for index in range(base.num_nets):
        builder.add_net(base.net_name(index), list(base.cells_of_net(index)))
    builder.add_net("brand_new_net", [extra, 0])
    edited = builder.build(drop_singleton_nets=False)
    result = incremental_detect(base, edited, seed_trace, CFG)
    assert result.mode == "full"
    assert result.reason == "cell set changed"
    cold, _ = run_traced(edited, CFG)
    assert _strip(result.report) == _strip(cold)


def test_fallback_on_fixed_flag_change(base):
    _, seed_trace = run_traced(base, CFG)
    victim = base.movable_cells()[0]
    builder = NetlistBuilder()
    for index in range(base.num_cells):
        builder.add_cell(
            base.cell_name(index), area=base.cell_area(index),
            pin_count=base.cell_pin_count(index),
            fixed=True if index == victim else base.cell_is_fixed(index),
        )
    for index in range(base.num_nets):
        builder.add_net(base.net_name(index), list(base.cells_of_net(index)))
    edited = builder.build(drop_singleton_nets=False)
    result = incremental_detect(base, edited, seed_trace, CFG)
    assert result.mode == "full"
    assert result.reason == "fixed flags changed"


def test_fallback_on_total_pin_change(base):
    _, seed_trace = run_traced(base, CFG)
    builder = NetlistBuilder()
    for index in range(base.num_cells):
        builder.add_cell(
            base.cell_name(index), area=base.cell_area(index),
            pin_count=base.cell_pin_count(index) + (1 if index == 0 else 0),
        )
    for index in range(base.num_nets):
        builder.add_net(base.net_name(index), list(base.cells_of_net(index)))
    edited = builder.build(drop_singleton_nets=False)
    result = incremental_detect(base, edited, seed_trace, CFG)
    assert result.mode == "full"
    assert result.reason == "total pin count changed"


def test_fallback_on_dirty_fraction_threshold(base):
    _, seed_trace = run_traced(base, CFG)
    edited, _ = rewire_pins(base, 0.001, rng=1, return_delta=True)
    result = incremental_detect(
        base, edited, seed_trace, CFG, full_threshold=0.0
    )
    assert result.mode == "full"
    assert "dirty fraction" in result.reason
    assert result.dirty_cells > 0
    cold, _ = run_traced(edited, CFG)
    assert _strip(result.report) == _strip(cold)


# ---------------------------------------------------------------- reuse ladder
def test_detect_with_reuse_ladder(base, tmp_path):
    edited = rewire_pins(base, 0.001, rng=1)
    with ResultStore(str(tmp_path)) as store:
        first = detect_with_reuse(base, CFG, store)
        assert first.mode == "full"
        assert first.reason == "no traced base run"
        job_fp = job_fingerprint(base, CFG)
        assert store.get(job_fp) is not None
        assert load_trace(store, job_fp) is not None
        assert os.path.exists(design_path(store, fingerprint_netlist(base)))
        head = store.get_payload(
            _head_key(fingerprint_config(CFG)), kind=KIND_INCREMENTAL_HEAD
        )
        assert head["netlist_fingerprint"] == fingerprint_netlist(base)

        second = detect_with_reuse(base, CFG, store)
        assert second.mode == "cached"
        assert _strip(second.report) == _strip(first.report)

        # The edit resolves its base via the head pointer + design blob.
        third = detect_with_reuse(edited, CFG, store)
        assert third.mode == "incremental"
        assert third.base_fingerprint == fingerprint_netlist(base)
        assert 0 < third.seeds_recomputed <= third.seeds_total
        cold, _ = run_traced(edited, CFG)
        assert _strip(third.report) == _strip(cold)
        provenance = store.get_payload(
            f"prov-{job_fingerprint(edited, CFG)}",
            kind=KIND_INCREMENTAL_PROVENANCE,
        )
        assert provenance["mode"] == "incremental"
        assert provenance["base_fingerprint"] == fingerprint_netlist(base)
        assert provenance["dirty_cells"] == third.dirty_cells

        fourth = detect_with_reuse(edited, CFG, store)
        assert fourth.mode == "cached"

        counts = store.kind_counts()
        assert counts[KIND_FINDER_TRACE] == 2
        assert counts[KIND_INCREMENTAL_PROVENANCE] == 1
        assert counts[KIND_INCREMENTAL_HEAD] == 1


def test_detect_with_reuse_explicit_base(base, tmp_path):
    """An explicit base netlist works without any head pointer."""
    edited = rewire_pins(base, 0.001, rng=1)
    with ResultStore(str(tmp_path)) as store:
        detect_with_reuse(base, CFG, store)
        store.evict(_head_key(fingerprint_config(CFG)))
        result = detect_with_reuse(edited, CFG, store, base=base)
        assert result.mode == "incremental"


def test_detect_with_reuse_without_store_or_seed(base, tmp_path):
    result = detect_with_reuse(base, CFG, None)
    assert result.mode == "full" and result.reason == "no result store"
    unpinned = FinderConfig(num_seeds=4, max_order_length=20, seed=None)
    with ResultStore(str(tmp_path)) as store:
        result = detect_with_reuse(base, unpinned, store)
        assert result.mode == "full" and result.reason == "unpinned seed"
        assert store.kind_counts() == {}  # nondeterministic runs never persist


def test_load_trace_evicts_malformed_payloads(base, tmp_path):
    with ResultStore(str(tmp_path)) as store:
        store.put_payload(
            _trace_key("deadbeef"), {"version": 999}, kind=KIND_FINDER_TRACE
        )
        assert load_trace(store, "deadbeef") is None
        assert store.get_payload(_trace_key("deadbeef")) is None  # evicted


# ---------------------------------------------------------------- perturb
def test_rewire_zero_fraction_returns_same_object(base):
    assert rewire_pins(base, 0.0) is base
    netlist, delta = rewire_pins(base, 0.0, return_delta=True)
    assert netlist is base
    assert delta.is_empty


def test_rewire_is_seed_deterministic(base):
    a = rewire_pins(base, 0.05, rng=13)
    b = rewire_pins(base, 0.05, rng=13)
    c = rewire_pins(base, 0.05, rng=14)
    assert fingerprint_netlist(a) == fingerprint_netlist(b)
    assert fingerprint_netlist(a) != fingerprint_netlist(c)


def test_rewire_preserves_pin_accounting(base):
    edited, delta = rewire_pins(base, 0.05, rng=13, return_delta=True)
    assert edited.num_cells == base.num_cells
    assert edited.num_nets == base.num_nets
    assert edited.num_pins == base.num_pins  # moves, never creates pins
    for index in range(base.num_nets):
        assert len(edited.cells_of_net(index)) == len(base.cells_of_net(index))
    shifts = {
        edit.name: edit.pin_count - base.cell_pin_count(
            base.cell_index(edit.name)
        )
        for edit in delta.cells_changed
    }
    assert sum(shifts.values()) == 0


def test_rewire_validation():
    netlist, _ = planted_gtl_graph(200, [20], seed=1)
    with pytest.raises(GenerationError):
        rewire_pins(netlist, -0.1)
    with pytest.raises(GenerationError):
        rewire_pins(netlist, 1.5)


# ---------------------------------------------------------------- bench guard
@pytest.fixture()
def propagating_repro_logs():
    """Let ``repro.*`` records reach caplog's root handler.

    ``repro.obs.logcfg.configure_logging`` (run by earlier tests) sets
    ``propagate = False`` on the ``repro`` logger, which would hide bench
    warnings from caplog.
    """
    logger = logging.getLogger("repro")
    previous = logger.propagate
    logger.propagate = True
    yield
    logger.propagate = previous


def _load_record_module():
    path = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "_record.py"
    spec = importlib.util.spec_from_file_location("bench_record", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_bench_record_warns_on_headline_regression(
    tmp_path, caplog, propagating_repro_logs
):
    bench_record = _load_record_module()
    out = tmp_path / "BENCH_x.json"
    bench_record.record("x", {"speedup": 20.0}, path=out, headline="speedup")
    with caplog.at_level(logging.INFO, logger="repro.obs.bench"):
        bench_record.record("x", {"speedup": 19.0}, path=out, headline="speedup")
        assert not any(r.levelno == logging.WARNING for r in caplog.records)
        bench_record.record("x", {"speedup": 10.0}, path=out, headline="speedup")
    warnings = [r for r in caplog.records if r.levelno == logging.WARNING]
    assert len(warnings) == 1
    assert "regressed" in warnings[0].getMessage()
    assert json.loads(out.read_text())["results"]["speedup"] == 10.0


def test_bench_record_lower_is_better_direction(
    tmp_path, caplog, propagating_repro_logs
):
    bench_record = _load_record_module()
    out = tmp_path / "BENCH_y.json"
    bench_record.record(
        "y", {"latency": 1.0}, path=out, headline="latency",
        higher_is_better=False,
    )
    with caplog.at_level(logging.INFO, logger="repro.obs.bench"):
        bench_record.record(
            "y", {"latency": 1.5}, path=out, headline="latency",
            higher_is_better=False,
        )
    assert any(
        r.levelno == logging.WARNING and "regressed" in r.getMessage()
        for r in caplog.records
    )


def test_bench_record_smoke_never_overwrites_full(tmp_path):
    bench_record = _load_record_module()
    out = tmp_path / "BENCH_z.json"
    bench_record.record("z", {"speedup": 20.0}, path=out)
    bench_record.record("z", {"speedup": 1.0}, path=out, smoke=True)
    assert json.loads(out.read_text())["results"]["speedup"] == 20.0
