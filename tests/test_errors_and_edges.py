"""Edge-case and error-path coverage across the package."""

import pytest

from repro.errors import (
    FinderError,
    GenerationError,
    MetricError,
    NetlistError,
    ParseError,
    PlacementError,
    ReproError,
    ValidationError,
)
from repro.netlist.builder import NetlistBuilder


def test_error_hierarchy():
    for error_type in (
        NetlistError,
        ValidationError,
        ParseError,
        MetricError,
        FinderError,
        PlacementError,
        GenerationError,
    ):
        assert issubclass(error_type, ReproError)
    assert issubclass(ValidationError, NetlistError)


def test_parse_error_formats_location():
    error = ParseError("bad token", path="file.nets", line=12)
    assert "file.nets:12:" in str(error)
    assert error.path == "file.nets"
    assert error.line == 12


def test_parse_error_without_line():
    error = ParseError("bad file", path="x.aux")
    assert str(error).startswith("x.aux: ")


def test_parse_error_bare():
    assert str(ParseError("oops")) == "oops"


# ---------------------------------------------------------------- edges
def test_single_cell_netlist_stats():
    from repro.netlist import netlist_stats

    builder = NetlistBuilder()
    builder.add_cell("only")
    stats = netlist_stats(builder.build())
    assert stats.num_cells == 1
    assert stats.num_nets == 0
    assert stats.avg_net_degree == 0.0
    assert stats.max_net_degree == 0


def test_empty_netlist_stats():
    from repro.netlist import netlist_stats

    stats = netlist_stats(NetlistBuilder().build())
    assert stats.num_cells == 0
    assert stats.avg_pins_per_cell == 0.0


def test_grower_on_two_cell_netlist():
    from repro.finder.ordering import grow_linear_ordering

    builder = NetlistBuilder()
    a, b = builder.add_cells(2)
    builder.add_net("n", [a, b])
    ordering = grow_linear_ordering(builder.build(), a, 10)
    assert ordering == [a, b]


def test_finder_on_dense_tiny_netlist(two_cliques):
    """The finder runs on an 8-cell graph without blowing up."""
    from repro.finder import FinderConfig, find_tangled_logic

    report = find_tangled_logic(
        two_cliques,
        FinderConfig(num_seeds=4, min_gtl_size=2, seed=1, boundary_fraction=1.0),
    )
    # 4-cell cliques with cut 1 may or may not pass the clear-minimum
    # threshold; either way the result must be well-formed and disjoint.
    seen = set()
    for gtl in report.gtls:
        assert seen.isdisjoint(gtl.cells)
        seen.update(gtl.cells)


def test_experiment_constants_consistency():
    """fig7 reuses fig6's calibration so before/after are comparable."""
    from repro.experiments import fig6, fig7
    import inspect

    source = inspect.getsource(fig7)
    assert "TARGET_AVERAGE_OCCUPANCY" in source
    assert 0 < fig6.TARGET_AVERAGE_OCCUPANCY < 1
    assert fig6.UTILIZATION <= 1


def test_table1_scaled_cases_monotone():
    from repro.experiments.table1 import PAPER_CASES, scaled_cases

    scaled = scaled_cases(0.1)
    assert len(scaled) == len(PAPER_CASES)
    for (cells, sizes), (p_cells, p_sizes) in zip(scaled, PAPER_CASES):
        assert cells <= p_cells
        assert len(sizes) == len(p_sizes)


def test_cli_experiment_unknown_choice_rejected():
    from repro.cli import build_parser

    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "fig99"])


def test_score_context_is_frozen(two_cliques):
    from repro.metrics import ScoreContext

    context = ScoreContext.for_netlist(two_cliques, 0.6)
    with pytest.raises(Exception):
        context.metric = "gtl_s"


def test_finder_config_is_frozen():
    from repro.finder import FinderConfig

    config = FinderConfig()
    with pytest.raises(Exception):
        config.num_seeds = 5
