"""Tests for the GTL applications: soft blocks and re-synthesis."""

import numpy as np
import pytest

from repro.apps import decompose_complex_gates, place_with_soft_blocks, soft_block_nets
from repro.errors import PlacementError
from repro.generators import IndustrialSpec, generate_industrial
from repro.netlist.builder import NetlistBuilder
from repro.netlist.ops import cut_size
from repro.netlist.validate import validate_netlist


@pytest.fixture(scope="module")
def rom_design():
    spec = IndustrialSpec(glue_gates=2000, rom_blocks=((5, 24),), num_pads=32)
    return generate_industrial(spec, seed=9)


# ---------------------------------------------------------------- soft blocks
def test_soft_block_nets_adds_pseudo_nets(rom_design):
    netlist, truth = rom_design
    augmented = soft_block_nets(netlist, [truth[0]], rng=1)
    assert augmented.num_cells == netlist.num_cells
    added = augmented.num_nets - netlist.num_nets
    expected = len(truth[0]) + int(0.5 * len(truth[0]))
    assert added == expected
    assert augmented.net_name(netlist.num_nets).startswith("__soft0_")
    validate_netlist(augmented)


def test_soft_block_requires_two_cells(rom_design):
    netlist, _ = rom_design
    with pytest.raises(PlacementError):
        soft_block_nets(netlist, [[1]])


def test_soft_block_ring_connects_group(rom_design):
    netlist, truth = rom_design
    augmented = soft_block_nets(netlist, [truth[0]], chords_per_cell=0.0, rng=2)
    # The ring alone keeps the group connected inside the pseudo-nets.
    pseudo = [
        n
        for n in range(netlist.num_nets, augmented.num_nets)
        if augmented.net_name(n).startswith("__soft")
    ]
    touched = set()
    for net in pseudo:
        touched.update(augmented.cells_of_net(net))
    assert touched == set(truth[0])


def test_place_with_soft_blocks_tightens_group(rom_design):
    netlist, truth = rom_design
    block = sorted(truth[0])
    baseline = place_with_soft_blocks(netlist, [], utilization=0.5)
    constrained = place_with_soft_blocks(
        netlist, [block], chords_per_cell=1.0, utilization=0.5
    )
    assert constrained.netlist is netlist  # pseudo-nets stripped

    def dispersion(p):
        xs, ys = p.x[block], p.y[block]
        return float(np.hypot(xs - xs.mean(), ys - ys.mean()).mean())

    assert dispersion(constrained) <= dispersion(baseline) * 1.05


# ---------------------------------------------------------------- resynthesis
def _wide_gate_netlist():
    """One NAND4-like gate (4 inputs + 1 output) among buffers."""
    builder = NetlistBuilder()
    sources = [builder.add_cell(f"src{i}") for i in range(4)]
    wide = builder.add_cell("wide", pin_count=5)
    sink = builder.add_cell("sink")
    for i, src in enumerate(sources):
        builder.add_net(f"in{i}", [src, wide])
    builder.add_net("out", [wide, sink])
    return builder.build(), wide


def test_decompose_replaces_wide_gate():
    netlist, wide = _wide_gate_netlist()
    new_netlist, mapping = decompose_complex_gates(netlist, [wide])
    validate_netlist(new_netlist)
    stages = mapping[wide]
    assert len(stages) == 3  # 4 inputs -> 2 + 1 root stages
    # Every original net survives with >= 2 pins.
    for name in ("in0", "in1", "in2", "in3", "out"):
        index = new_netlist.net_index(name)
        assert new_netlist.net_degree(index) >= 2
    # Intermediate wires exist.
    assert new_netlist.num_nets > netlist.num_nets


def test_decompose_reduces_pin_density():
    netlist, wide = _wide_gate_netlist()
    new_netlist, mapping = decompose_complex_gates(netlist, [wide])
    old_density = netlist.cell_pin_count(wide) / netlist.cell_area(wide)
    for stage in mapping[wide]:
        density = new_netlist.cell_pin_count(stage) / new_netlist.cell_area(stage)
        assert density < old_density


def test_decompose_leaves_simple_gates_alone(triangle):
    new_netlist, mapping = decompose_complex_gates(triangle, [0, 1, 2])
    assert new_netlist.num_cells == triangle.num_cells
    assert new_netlist.num_nets == triangle.num_nets
    for net in range(triangle.num_nets):
        assert set(new_netlist.cells_of_net(net)) == set(triangle.cells_of_net(net))
    assert all(len(v) == 1 for v in mapping.values())


def test_decompose_validation(triangle):
    with pytest.raises(PlacementError):
        decompose_complex_gates(triangle, [0], max_fanin=1)
    with pytest.raises(PlacementError):
        decompose_complex_gates(triangle, [99])


def test_decompose_preserves_external_cut(rom_design):
    """Re-instantiation must not change the block's external cut."""
    netlist, truth = rom_design
    block = truth[0]
    old_cut = cut_size(netlist, block)
    new_netlist, mapping = decompose_complex_gates(netlist, block)
    new_block = {c for old in block for c in mapping[old]}
    assert cut_size(new_netlist, new_block) == old_cut
    validate_netlist(new_netlist)


def test_decompose_grows_area_modestly(rom_design):
    netlist, truth = rom_design
    block = truth[0]
    new_netlist, _ = decompose_complex_gates(netlist, block)
    old_area = sum(netlist.cell_area(c) for c in range(netlist.num_cells))
    new_area = sum(new_netlist.cell_area(c) for c in range(new_netlist.num_cells))
    assert old_area < new_area < 1.5 * old_area
