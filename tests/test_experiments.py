"""Smoke tests: every table/figure harness runs at tiny scale and the
paper-shaped qualitative claims hold."""

import pytest

from repro.experiments import (
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_table1,
    run_table2,
    run_table3,
)
from repro.experiments.common import ExperimentResult
from repro.generators import IndustrialSpec
from repro.generators.ispd_like import default_bigblue1_like


@pytest.fixture(scope="module")
def tiny_industrial_spec():
    return IndustrialSpec(
        glue_gates=3000, rom_blocks=((5, 24), (5, 16)), num_pads=48
    )


def test_experiment_result_render_and_csv(tmp_path):
    result = ExperimentResult(
        name="X", headers=["a"], rows=[[1]], series={"s": [(1, 2.0), (2, 1.0)]}
    )
    text = result.render()
    assert "== X ==" in text
    assert "min 1" in text
    path = str(tmp_path / "s.csv")
    result.write_series_csv(path)
    assert open(path).read().startswith("series,x,y")


def test_table1_small_scale_finds_everything():
    result = run_table1(
        cases=[(1200, (80,)), (2500, (70, 200))], num_seeds=24, seed=1
    )
    assert len(result.rows) == 3
    missed = [r for r in result.rows if r[5] == "(missed)"]
    assert not missed
    for row in result.rows:
        assert row[8] <= 5.0  # miss%
        assert row[9] <= 10.0  # over%


def test_table2_smoke():
    result = run_table2(scale=0.05, num_seeds=12, seed=1)
    assert result.rows
    names = {row[0] for row in result.rows if row[0]}
    assert "bigblue1-like" in names


def test_table3_smoke(tiny_industrial_spec):
    result = run_table3(spec=tiny_industrial_spec, num_seeds=32, seed=2)
    assert len(result.rows) == 2
    found = [r for r in result.rows if r[1] != "(missed)"]
    assert found  # at least one block recovered
    for row in found:
        assert row[4] <= 10.0  # miss%


def test_fig2_curve_shape():
    result = run_fig2(num_cells=3000, gtl_size=300, seed=3)
    inside = result.series["seed inside GTL"]
    outside = result.series["seed outside GTL"]
    inside_min = min(v for _, v in inside)
    outside_min = min(v for _, v in outside if _ > 50)
    assert inside_min < 0.3
    assert outside_min > inside_min
    # Minimum location near the planted boundary.
    min_size = min(inside, key=lambda p: p[1])[0]
    assert abs(min_size - 300) <= 15


def test_fig3_sharper_than_fig2():
    result = run_fig3(num_cells=3000, gtl_size=300, seed=3)
    note = "\n".join(result.notes)
    assert "GTL-SD" in note
    inside_min = min(v for _, v in result.series["seed inside GTL"])
    assert inside_min < 0.1


def test_fig4_compactness():
    result = run_fig4(scale=0.08, num_seeds=24, seed=4, show_map=False)
    assert result.rows, "no GTLs found at this scale"
    for row in result.rows:
        assert row[4] > 1.2  # found GTLs are spatially compact


def test_fig5_metric_behaviour():
    result = run_fig5(scale=0.15, seed=5, probe_seeds=16)
    assert set(result.series) == {"nGTL-S", "GTL-SD", "ratio-cut"}
    ngtl = result.series["nGTL-S"]
    sd = result.series["GTL-SD"]
    # Both GTL metrics bottom out at nearly the same interior size.
    n_min = min(ngtl, key=lambda p: p[1])[0]
    d_min = min(sd, key=lambda p: p[1])[0]
    length = ngtl[-1][0]
    assert n_min < 0.9 * length
    assert abs(n_min - d_min) <= 0.1 * length


def test_fig6_coincidence(tiny_industrial_spec):
    result = run_fig6(
        spec=tiny_industrial_spec, num_seeds=32, seed=6, show_map=False
    )
    values = {row[0]: row[1] for row in result.rows}
    assert values["GTLs found"] >= 1
    assert values["mean occupancy of GTL tiles"] > values["mean occupancy elsewhere"]


def test_fig7_inflation_reduces_congestion(tiny_industrial_spec):
    result = run_fig7(spec=tiny_industrial_spec, num_seeds=32, seed=6)
    rows = {row[0]: row for row in result.rows}
    before = rows["nets through 100% tiles"][1]
    after = rows["nets through 100% tiles"][2]
    assert after <= before
