"""Tests for the placement substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlacementError
from repro.generators import IndustrialSpec, generate_industrial
from repro.netlist.builder import NetlistBuilder
from repro.placement import (
    Die,
    assign_pad_positions,
    diffuse_density,
    inflate_cells,
    legalize_rows,
    make_fillers,
    place,
    solve_quadratic_placement,
    spread_cells,
)
from repro.placement.pads import _perimeter_point


# ---------------------------------------------------------------- die
def test_die_validation():
    with pytest.raises(PlacementError):
        Die(0, 10)
    with pytest.raises(PlacementError):
        Die(10, -1)
    with pytest.raises(PlacementError):
        Die(10, 10, num_rows=-1)


def test_die_for_area():
    die = Die.for_area(500.0, utilization=0.5)
    assert die.area == pytest.approx(1000.0)
    assert die.width == pytest.approx(die.height)


def test_die_for_area_aspect():
    die = Die.for_area(100.0, utilization=1.0, aspect=4.0)
    assert die.width == pytest.approx(4 * die.height)
    assert die.area == pytest.approx(100.0)


def test_die_for_area_validation():
    with pytest.raises(PlacementError):
        Die.for_area(100, utilization=0.0)
    with pytest.raises(PlacementError):
        Die.for_area(0.0)


def test_die_clamp():
    die = Die(10, 20)
    assert die.clamp(-5, 25) == (0.0, 20.0)
    assert die.center == (5.0, 10.0)


# ---------------------------------------------------------------- pads
def test_perimeter_point_walks_edges():
    die = Die(10, 10)
    assert _perimeter_point(die, 0) == (0.0, 0.0)
    assert _perimeter_point(die, 5) == (5.0, 0.0)
    assert _perimeter_point(die, 15) == (10.0, 5.0)
    assert _perimeter_point(die, 25) == (5.0, 10.0)
    assert _perimeter_point(die, 35) == (0.0, 5.0)
    assert _perimeter_point(die, 40) == (0.0, 0.0)  # wraps


def test_assign_pad_positions(mixed_netlist):
    die = Die(10, 10)
    positions = assign_pad_positions(mixed_netlist, die)
    assert set(positions) == {3}
    x, y = positions[3]
    on_edge = x in (0.0, 10.0) or y in (0.0, 10.0)
    assert on_edge


def test_assign_pad_positions_requires_pads(triangle):
    with pytest.raises(PlacementError):
        assign_pad_positions(triangle, Die(5, 5))


# ---------------------------------------------------------------- quadratic
def test_quadratic_pulls_between_pads():
    """A chain between two pads settles at interior equilibrium points."""
    builder = NetlistBuilder()
    left = builder.add_cell("pl", fixed=True)
    a = builder.add_cell("a")
    b = builder.add_cell("b")
    right = builder.add_cell("pr", fixed=True)
    builder.add_net("n1", [left, a])
    builder.add_net("n2", [a, b])
    builder.add_net("n3", [b, right])
    netlist = builder.build()
    die = Die(30, 30)
    pads = {left: (0.0, 15.0), right: (30.0, 15.0)}
    x, y = solve_quadratic_placement(netlist, die, pads)
    assert x[a] == pytest.approx(10.0, abs=0.1)
    assert x[b] == pytest.approx(20.0, abs=0.1)
    assert y[a] == pytest.approx(15.0, abs=0.1)


def test_quadratic_missing_pad_position(mixed_netlist):
    with pytest.raises(PlacementError):
        solve_quadratic_placement(mixed_netlist, Die(10, 10), {})


def test_quadratic_without_movable_cells():
    builder = NetlistBuilder()
    p = builder.add_cell("p", fixed=True)
    q = builder.add_cell("q", fixed=True)
    builder.add_net("n", [p, q])
    netlist = builder.build()
    x, y = solve_quadratic_placement(
        netlist, Die(10, 10), {p: (1.0, 2.0), q: (3.0, 4.0)}
    )
    assert (x[p], y[p]) == (1.0, 2.0)


def test_quadratic_anchors_hold_positions(small_planted):
    netlist, _ = small_planted
    die = Die(100, 100)
    rng = np.random.default_rng(0)
    ax = rng.uniform(0, 100, netlist.num_cells)
    ay = rng.uniform(0, 100, netlist.num_cells)
    x, y = solve_quadratic_placement(
        netlist, die, {}, anchors=(ax, ay), anchor_weight=100.0
    )
    # With overwhelming anchors, cells stay near their anchor points.
    assert float(np.abs(x - ax).mean()) < 1.0


def test_quadratic_ring_model_for_large_nets(star_netlist):
    # One 5-pin net with clique_limit=3 -> ring decomposition; solvable.
    die = Die(10, 10)
    x, y = solve_quadratic_placement(star_netlist, die, {}, clique_limit=3)
    assert np.all((0 <= x) & (x <= 10))


def test_quadratic_bad_anchor_mode(small_planted):
    netlist, _ = small_planted
    with pytest.raises(PlacementError):
        solve_quadratic_placement(
            netlist,
            Die(10, 10),
            {},
            anchors=(np.zeros(netlist.num_cells), np.zeros(netlist.num_cells)),
            anchor_mode="bogus",
        )


# ---------------------------------------------------------------- spreading
def test_spread_cells_uniformizes():
    rng = np.random.default_rng(1)
    n = 400
    x = 50 + rng.normal(0, 0.5, n)
    y = 50 + rng.normal(0, 0.5, n)
    die = Die(100, 100)
    sx, sy = spread_cells(x, y, np.ones(n), die)
    # Quarters of the die get roughly a quarter of the cells each.
    left = np.sum(sx < 50)
    assert 0.4 * n < left < 0.6 * n
    bottom = np.sum(sy < 50)
    assert 0.4 * n < bottom < 0.6 * n


def test_spread_cells_respects_area_weights():
    # One big cell among small ones claims proportional space.
    n = 101
    x = np.full(n, 5.0)
    y = np.full(n, 5.0)
    areas = np.ones(n)
    areas[0] = 100.0
    die = Die(10, 10)
    sx, sy = spread_cells(x, y, areas, die)
    assert np.all((0 <= sx) & (sx <= 10))


def test_spread_cells_empty_movable():
    die = Die(10, 10)
    x, y = spread_cells(np.array([1.0]), np.array([1.0]), [1.0], die, movable=np.array([], dtype=np.int64))
    assert x[0] == 1.0


def test_spread_cells_rejects_bad_areas():
    die = Die(10, 10)
    with pytest.raises(PlacementError):
        spread_cells(np.array([1.0]), np.array([1.0]), [0.0], die)


def test_spread_preserves_relative_order():
    x = np.array([1.0, 2.0, 3.0, 4.0])
    y = np.full(4, 5.0)
    die = Die(10, 10)
    sx, _ = spread_cells(x, y, np.ones(4), die, leaf_cells=1)
    assert list(np.argsort(sx)) == [0, 1, 2, 3]


def test_spread_split_matches_area_split_on_skewed_areas():
    """Regression: the [0.05, 0.95] sliver clamp detached the geometric
    split from the area split — two cells holding 2% of the area were
    handed 5% of the region (the split index provably cannot move, so
    consistency requires the geometry to follow the area)."""
    # Coordinate order: two tiny cells, then one dominant cell.
    x = np.array([1.0, 2.0, 9.0])
    y = np.full(3, 5.0)
    areas = np.array([0.01, 0.01, 0.98])
    die = Die(10, 10)
    sx, _ = spread_cells(x, y, areas, die, leaf_cells=1)
    # Left block (2% of area) gets exactly 2% of the width, [0, 0.2]; the
    # tall thin region then splits vertically, centering both tiny cells
    # at x = 0.1.  The big cell is centered in [0.2, 10].  (The old clamp
    # handed the left block [0, 0.5] instead.)
    assert sx[0] == pytest.approx(0.1, abs=1e-9)
    assert sx[1] == pytest.approx(0.1, abs=1e-9)
    assert sx[2] == pytest.approx((0.2 + 10.0) / 2.0, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(
    st.floats(min_value=1e-3, max_value=1e3),
    st.floats(min_value=1e-3, max_value=1e3),
)
def test_property_two_cell_split_fraction_equals_area_fraction(a0, a1):
    """For a single split, the region boundary sits exactly at the area
    fraction — for any skew, including beyond the old clamp band."""
    x = np.array([2.0, 8.0])
    y = np.full(2, 5.0)
    die = Die(10.0, 10.0)
    sx, _ = spread_cells(x, y, np.array([a0, a1]), die, leaf_cells=1)
    fraction = min(max(a0 / (a0 + a1), 1e-6), 1.0 - 1e-6)
    assert sx[0] == pytest.approx(fraction * 10.0 / 2.0, rel=1e-9)
    assert sx[1] == pytest.approx((fraction + 1.0) * 10.0 / 2.0, rel=1e-9)


def test_relieve_density_coincident_clump_terminates():
    """Regression: a clump of coincident coordinates descends the quadtree
    forever (every level keeps all cells in one quadrant) and blew the
    recursion limit; the depth guard reports the overfill instead and the
    lowest enclosing node spreads the clump."""
    from repro.placement import relieve_density

    n = 30
    x = np.full(n, 5.0)
    y = np.full(n, 5.0)
    die = Die(10, 10)
    sx, sy = relieve_density(x, y, np.ones(n), die, max_utilization=0.5, min_cells=8)
    # The clump actually separated.
    assert float(np.std(sx)) > 0.5
    coords = set(zip(sx.round(9), sy.round(9)))
    assert len(coords) > n // 2


# ---------------------------------------------------------------- fillers
def test_make_fillers_tile_whitespace():
    die = Die(10, 10)
    fx, fy, fa = make_fillers(total_cell_area=60.0, die=die, mean_cell_area=1.0)
    assert fa.sum() == pytest.approx(40.0)
    assert np.all((0 <= fx) & (fx <= 10))


def test_make_fillers_no_whitespace():
    die = Die(10, 10)
    fx, fy, fa = make_fillers(total_cell_area=100.0, die=die, mean_cell_area=1.0)
    assert len(fx) == 0


# ---------------------------------------------------------------- diffusion
def test_diffuse_density_relieves_clump():
    rng = np.random.default_rng(0)
    n = 1500
    x = 50 + rng.normal(0, 2, n)
    y = 50 + rng.normal(0, 2, n)
    die = Die(100, 100)
    sx, sy = diffuse_density(x, y, np.ones(n), die, max_utilization=0.8)
    bw = 100 / 32
    ix = np.clip((sx / bw).astype(int), 0, 31)
    iy = np.clip((sy / bw).astype(int), 0, 31)
    density = np.zeros((32, 32))
    np.add.at(density, (ix, iy), 1.0)
    density /= bw * bw
    assert float(density.max()) < 51.0 / (bw * bw) * 5  # hugely reduced
    assert float(x.std()) < float(sx.std())  # actually spread out


def test_diffuse_density_validation():
    die = Die(10, 10)
    with pytest.raises(PlacementError):
        diffuse_density(np.array([1.0]), np.array([1.0]), [1.0], die, max_utilization=0.0)


def test_diffuse_density_noop_when_sparse():
    rng = np.random.default_rng(2)
    x = rng.uniform(0, 100, 50)
    y = rng.uniform(0, 100, 50)
    die = Die(100, 100)
    sx, sy = diffuse_density(x, y, np.ones(50), die, max_utilization=0.9)
    assert np.allclose(sx, x) and np.allclose(sy, y)


# ---------------------------------------------------------------- legalize
def test_legalize_rows_snap_and_no_overlap():
    x = np.array([1.0, 1.1, 1.2, 8.0])
    y = np.array([2.0, 2.1, 1.9, 7.0])
    die = Die(10, 10)
    lx, ly = legalize_rows(x, y, np.ones(4), die, num_rows=10)
    rows = np.round(ly - 0.5).astype(int)
    for row in set(rows):
        members = np.flatnonzero(rows == row)
        order = members[np.argsort(lx[members])]
        for a, b in zip(order, order[1:]):
            assert lx[b] - lx[a] >= 1.0 - 1e-9  # no overlap (unit widths)


def test_legalize_rows_keeps_cells_in_die():
    rng = np.random.default_rng(3)
    n = 200
    x = rng.uniform(0, 50, n)
    y = rng.uniform(0, 50, n)
    die = Die(50, 50)
    lx, ly = legalize_rows(x, y, np.ones(n), die)
    assert np.all((0 <= lx) & (lx <= 50))
    assert np.all((0 <= ly) & (ly <= 50))


def test_legalize_rows_overflow_pullback_stays_overlap_free():
    """Regression: when an overfull row's right-edge pull-back drove the
    packed prefix past the left die edge (rounding in the scaled widths
    can overfill a row by a few ulp, amplified at large coordinates), the
    per-cell ``max(0, left)`` clamp pushed the first cells back onto their
    neighbors.  The row is now shifted right as a whole, preserving every
    gap; the worst-case residual is one ulp of the die width per cell."""
    capacity = 1e14
    die = Die(capacity, 1.0)
    tolerance = 16 * np.spacing(capacity)
    for seed in (2, 5, 28, 29):
        rng = np.random.default_rng(seed)
        n = 50000
        widths = rng.random(n) * (2.5 * capacity / n)  # overfull: scale < 1
        x = capacity - rng.random(n) * capacity * 0.001  # piled at the right
        y = np.full(n, 0.5)
        lx, _ = legalize_rows(x, y, widths, die, num_rows=1)
        scale = min(1.0, capacity / widths.sum())
        w = widths * scale
        order = np.argsort(lx, kind="stable")
        lefts = lx[order] - w[order] / 2
        rights = lx[order] + w[order] / 2
        overlap = float(np.max(rights[:-1] - lefts[1:]))
        assert overlap <= tolerance, f"seed {seed}: overlap {overlap}"
        assert float(lefts.min()) >= -tolerance
        assert float(rights.max()) <= capacity * (1 + 1e-12)


def test_legalize_empty_movable():
    die = Die(10, 10)
    lx, ly = legalize_rows(
        np.array([1.0]), np.array([1.0]), [1.0], die, movable=np.array([], dtype=np.int64)
    )
    assert lx[0] == 1.0


# ---------------------------------------------------------------- inflation
def test_inflate_cells(mixed_netlist):
    inflated = inflate_cells(mixed_netlist, [0, 1], factor=4.0)
    assert inflated.cell_area(0) == pytest.approx(8.0)
    assert inflated.cell_area(1) == pytest.approx(4.0)
    assert inflated.cell_area(2) == pytest.approx(1.0)
    # Connectivity, names and pin counts preserved.
    assert inflated.num_nets == mixed_netlist.num_nets
    assert inflated.cell_pin_count(0) == mixed_netlist.cell_pin_count(0)
    assert inflated.cell_name(2) == mixed_netlist.cell_name(2)


def test_inflate_cells_validation(mixed_netlist):
    with pytest.raises(PlacementError):
        inflate_cells(mixed_netlist, [0], factor=0.0)
    with pytest.raises(PlacementError):
        inflate_cells(mixed_netlist, [99])


# ---------------------------------------------------------------- place
@pytest.fixture(scope="module")
def small_industrial():
    spec = IndustrialSpec(glue_gates=1500, rom_blocks=((4, 12),), num_pads=32)
    return generate_industrial(spec, seed=1)


def test_place_full_flow(small_industrial):
    netlist, truth = small_industrial
    placement = place(netlist, utilization=0.5)
    assert np.all((0 <= placement.x) & (placement.x <= placement.die.width))
    assert np.all((0 <= placement.y) & (placement.y <= placement.die.height))
    assert placement.hpwl() > 0


def test_place_clusters_tangled_block(small_industrial):
    netlist, truth = small_industrial
    placement = place(netlist, utilization=0.5)
    block = sorted(truth[0])
    rng = np.random.default_rng(0)
    random_cells = rng.choice(netlist.movable_cells(), size=len(block), replace=False)

    def dispersion(cells):
        xs, ys = placement.x[cells], placement.y[cells]
        return float(np.hypot(xs - xs.mean(), ys - ys.mean()).mean())

    assert dispersion(block) < 0.6 * dispersion(random_cells)


def test_place_with_legalization(small_industrial):
    netlist, _ = small_industrial
    placement = place(netlist, utilization=0.5, legalize=True)
    assert placement.hpwl() > 0


def test_place_deterministic(small_industrial):
    netlist, _ = small_industrial
    p1 = place(netlist, utilization=0.5)
    p2 = place(netlist, utilization=0.5)
    assert np.allclose(p1.x, p2.x)
    assert np.allclose(p1.y, p2.y)


def test_place_respects_given_die(small_industrial):
    netlist, _ = small_industrial
    die = Die(500, 500)
    placement = place(netlist, die=die)
    assert placement.die is die


def test_place_validation(small_industrial):
    netlist, _ = small_industrial
    with pytest.raises(PlacementError):
        place(netlist, spreading_iterations=-1)
    with pytest.raises(PlacementError):
        place(netlist, regroup_weight=0.0)
    with pytest.raises(PlacementError):
        place(netlist, contraction_weight=-1.0)


def test_placement_position_accessor(small_industrial):
    netlist, _ = small_industrial
    placement = place(netlist, utilization=0.5)
    x, y = placement.position(0)
    assert x == placement.x[0] and y == placement.y[0]
