"""Scalar/vectorized geometry parity and the NetlistArrays flat view.

The vectorized hot paths (batched HPWL/star, RUDY demand, quadratic spring
assembly) must agree with the scalar per-net reference implementations that
stay available through ``backend="python"`` / ``REPRO_SCALAR_BACKEND=1``
(``REPRO_SCALAR_GEOMETRY`` is honored as a deprecated alias).
"""

import pickle
import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetlistError
from repro.netlist import NetlistBuilder, geometry_backend
from repro.placement.placer import Placement
from repro.placement.quadratic import assemble_quadratic_system
from repro.placement.region import Die
from repro.routing.congestion import build_congestion_map
from repro.routing.wirelength import total_wirelength, wirelength_report


# ---------------------------------------------------------------- fixtures
def _random_placement(netlist, seed=0, die=None):
    rng = np.random.default_rng(seed)
    die = die or Die(100.0, 100.0)
    x = rng.uniform(0.0, die.width, netlist.num_cells)
    y = rng.uniform(0.0, die.height, netlist.num_cells)
    return Placement(netlist=netlist, die=die, x=x, y=y)


@pytest.fixture
def mixed_degree_netlist():
    """Degrees 1..8 plus a pad: exercises clique, ring and fixed paths."""
    rng = random.Random(13)
    builder = NetlistBuilder()
    cells = builder.add_cells(40)
    pad = builder.add_cell("pad0", fixed=True)
    builder.add_net("pnet", [cells[0], pad])
    builder.add_net("singleton", [cells[1]])
    for i, degree in enumerate([2, 2, 3, 3, 4, 5, 6, 7, 8, 8, 2, 5]):
        builder.add_net(f"n{i}", rng.sample(cells, degree))
    return builder.build()


# ---------------------------------------------------------------- arrays
def test_netlist_arrays_csr_roundtrip(mixed_netlist):
    arrays = mixed_netlist.arrays
    assert arrays.num_cells == mixed_netlist.num_cells
    assert arrays.num_nets == mixed_netlist.num_nets
    for net in range(mixed_netlist.num_nets):
        start, end = arrays.net_ptr[net], arrays.net_ptr[net + 1]
        assert tuple(arrays.net_cells[start:end]) == mixed_netlist.cells_of_net(net)
        assert arrays.net_degrees[net] == mixed_netlist.net_degree(net)
        assert all(arrays.pin_net[start:end] == net)
    for cell in range(mixed_netlist.num_cells):
        start, end = arrays.cell_ptr[cell], arrays.cell_ptr[cell + 1]
        assert tuple(arrays.cell_nets[start:end]) == mixed_netlist.nets_of_cell(cell)
        assert arrays.areas[cell] == mixed_netlist.cell_area(cell)
        assert arrays.pin_counts[cell] == mixed_netlist.cell_pin_count(cell)
        assert arrays.fixed_mask[cell] == mixed_netlist.cell_is_fixed(cell)


def test_netlist_arrays_cached_and_readonly(mixed_netlist):
    arrays = mixed_netlist.arrays
    assert mixed_netlist.arrays is arrays  # built once
    with pytest.raises(ValueError):
        arrays.net_cells[0] = 7


def test_netlist_pickle_drops_arrays_cache(mixed_netlist):
    _ = mixed_netlist.arrays
    clone = pickle.loads(pickle.dumps(mixed_netlist))
    assert clone == mixed_netlist
    assert clone._arrays is None  # cache not shipped
    # The clone lazily rebuilds an equivalent view.
    np.testing.assert_array_equal(clone.arrays.net_cells, mixed_netlist.arrays.net_cells)


def _gather_general(flat, starts, lengths):
    """The index-building general path, bypassing the contiguity fast path."""
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    offsets = np.zeros(len(lengths), dtype=np.int64)
    np.cumsum(lengths[:-1], out=offsets[1:])
    total = int(lengths.sum())
    return flat[np.arange(total, dtype=np.int64) + np.repeat(starts - offsets, lengths)]


def test_gather_segments_fast_path_agrees_with_general():
    from repro.netlist.arrays import gather_segments

    flat = np.arange(100, dtype=np.int64) * 3
    cases = [
        # Contiguous tilings (fast path): whole run, offset run, zero-length
        # segments interleaved, single segment.
        ([0, 10, 30], [10, 20, 5]),
        ([7, 12, 12, 40], [5, 0, 28, 9]),
        ([25], [60]),
        # Non-contiguous: gaps, overlaps, out-of-order (general path).
        ([0, 50, 20], [10, 10, 10]),
        ([5, 5, 90], [3, 3, 10]),
        ([10, 5], [4, 4]),
    ]
    for starts, lengths in cases:
        starts = np.asarray(starts, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        np.testing.assert_array_equal(
            gather_segments(flat, starts, lengths),
            _gather_general(flat, starts, lengths),
        )
    assert gather_segments(flat, np.array([3]), np.array([0])).size == 0


def test_gather_segments_contiguous_returns_view():
    from repro.netlist.arrays import gather_segments

    flat = np.arange(50, dtype=np.int64)
    out = gather_segments(flat, np.array([5, 15]), np.array([10, 20]))
    assert out.base is flat  # a slice view, not a fancy-index copy
    np.testing.assert_array_equal(out, flat[5:35])


def test_geometry_backend_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_SCALAR_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_SCALAR_GEOMETRY", raising=False)
    assert geometry_backend() == "numpy"
    assert geometry_backend("python") == "python"
    monkeypatch.setenv("REPRO_SCALAR_BACKEND", "1")
    assert geometry_backend() == "python"
    monkeypatch.setenv("REPRO_SCALAR_BACKEND", "0")
    assert geometry_backend() == "numpy"
    with pytest.raises(NetlistError):
        geometry_backend("fortran")


def test_legacy_scalar_geometry_alias_warns_once(monkeypatch):
    from repro.netlist import backend as backend_module

    monkeypatch.delenv("REPRO_SCALAR_BACKEND", raising=False)
    monkeypatch.setenv("REPRO_SCALAR_GEOMETRY", "1")
    monkeypatch.setattr(backend_module, "_legacy_warned", False)
    with pytest.warns(DeprecationWarning, match="REPRO_SCALAR_GEOMETRY"):
        assert geometry_backend() == "python"
    # Second resolution stays on the scalar path but does not warn again.
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert geometry_backend() == "python"
    # The new variable wins over the alias when both are set.
    monkeypatch.setenv("REPRO_SCALAR_BACKEND", "0")
    assert geometry_backend() == "numpy"


# ---------------------------------------------------------------- hpwl
def test_hpwl_bit_equal_on_seeded_fixture(small_planted):
    netlist, _ = small_planted
    placement = _random_placement(netlist, seed=17)
    assert placement.hpwl(backend="numpy") == placement.hpwl(backend="python")


def test_hpwl_bit_equal_small(mixed_degree_netlist):
    placement = _random_placement(mixed_degree_netlist, seed=3)
    assert placement.hpwl(backend="numpy") == placement.hpwl(backend="python")


def test_total_wirelength_backends_agree(mixed_degree_netlist):
    placement = _random_placement(mixed_degree_netlist, seed=5)
    for model in ("hpwl", "star"):
        scalar = total_wirelength(placement, model, backend="python")
        vector = total_wirelength(placement, model, backend="numpy")
        assert vector == pytest.approx(scalar, rel=1e-12, abs=1e-9)


def test_total_wirelength_subset_uses_scalar_path(mixed_degree_netlist):
    placement = _random_placement(mixed_degree_netlist, seed=5)
    nets = [2, 3, 4]
    subset = total_wirelength(placement, "hpwl", nets=nets)
    reference = total_wirelength(placement, "hpwl", nets=nets, backend="python")
    assert subset == reference


# ---------------------------------------------------------------- RUDY
def test_congestion_map_backends_agree(small_planted):
    netlist, _ = small_planted
    placement = _random_placement(netlist, seed=23)
    scalar = build_congestion_map(placement, grid=(16, 12), backend="python")
    vector = build_congestion_map(placement, grid=(16, 12), backend="numpy")
    np.testing.assert_allclose(
        vector.demand, scalar.demand, rtol=1e-12, atol=1e-9
    )
    assert vector.capacity == pytest.approx(scalar.capacity, rel=1e-12)
    assert vector.net_boxes == scalar.net_boxes


def test_congestion_map_backends_agree_degenerate(mixed_degree_netlist):
    """Stacked pins (degenerate boxes) widen identically in both backends."""
    die = Die(50.0, 50.0)
    x = np.full(mixed_degree_netlist.num_cells, 25.0)
    y = np.full(mixed_degree_netlist.num_cells, 25.0)
    placement = Placement(netlist=mixed_degree_netlist, die=die, x=x, y=y)
    scalar = build_congestion_map(placement, grid=(8, 8), capacity=1.0, backend="python")
    vector = build_congestion_map(placement, grid=(8, 8), capacity=1.0, backend="numpy")
    np.testing.assert_allclose(vector.demand, scalar.demand, rtol=1e-12, atol=1e-12)
    assert vector.net_boxes == scalar.net_boxes
    assert vector.demand.sum() > 0


def test_congestion_occupancy_is_cached(small_planted):
    netlist, _ = small_planted
    placement = _random_placement(netlist, seed=29)
    cmap = build_congestion_map(placement, grid=(8, 8))
    occupancy = cmap.occupancy
    assert cmap.occupancy is occupancy  # computed once, reused
    np.testing.assert_allclose(occupancy, cmap.demand / cmap.capacity)


# ---------------------------------------------------------------- assembly
def test_quadratic_assembly_backends_agree(mixed_degree_netlist):
    pad = mixed_degree_netlist.cell_index("pad0")
    pads = {pad: (0.0, 25.0)}
    for clique_limit in (3, 5):
        lap_s, bx_s, by_s, mov_s = assemble_quadratic_system(
            mixed_degree_netlist, pads, clique_limit=clique_limit, backend="python"
        )
        lap_v, bx_v, by_v, mov_v = assemble_quadratic_system(
            mixed_degree_netlist, pads, clique_limit=clique_limit, backend="numpy"
        )
        np.testing.assert_array_equal(mov_s, mov_v)
        difference = (lap_s - lap_v).tocoo()
        max_delta = np.abs(difference.data).max() if difference.nnz else 0.0
        assert max_delta <= 1e-9
        np.testing.assert_allclose(bx_v, bx_s, rtol=1e-12, atol=1e-9)
        np.testing.assert_allclose(by_v, by_s, rtol=1e-12, atol=1e-9)


def test_quadratic_assembly_backends_agree_planted(small_planted):
    netlist, _ = small_planted
    lap_s, bx_s, by_s, _ = assemble_quadratic_system(netlist, {}, backend="python")
    lap_v, bx_v, by_v, _ = assemble_quadratic_system(netlist, {}, backend="numpy")
    difference = (lap_s - lap_v).tocoo()
    max_delta = np.abs(difference.data).max() if difference.nnz else 0.0
    assert max_delta <= 1e-9
    np.testing.assert_allclose(bx_v, bx_s, atol=1e-9)
    np.testing.assert_allclose(by_v, by_s, atol=1e-9)


# ---------------------------------------------------------------- properties
@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_property_wirelength_ladder_both_backends(seed):
    """HPWL <= RMST and star >= HPWL on random placements, both backends."""
    rng = random.Random(seed)
    builder = NetlistBuilder()
    num_cells = rng.randint(3, 20)
    cells = builder.add_cells(num_cells)
    for i in range(rng.randint(2, 12)):
        degree = rng.randint(2, min(7, num_cells))
        builder.add_net(f"n{i}", rng.sample(cells, degree))
    netlist = builder.build()
    placement = _random_placement(netlist, seed=seed)

    reports = {
        backend: wirelength_report(placement, backend=backend)
        for backend in ("python", "numpy")
    }
    for backend, report in reports.items():
        assert report["hpwl"] <= report["rmst"] + 1e-9, backend
        assert report["star"] >= report["hpwl"] - 1e-9, backend
    for model in ("hpwl", "star", "clique", "rmst"):
        assert reports["numpy"][model] == pytest.approx(
            reports["python"][model], rel=1e-12, abs=1e-9
        )
    # HPWL is bit-identical across backends, not just close.
    assert placement.hpwl(backend="numpy") == placement.hpwl(backend="python")
