"""Tests for the extension modules: connectivity baselines, hierarchical
GTLs, netlist stats, PPM visualization, and the CLI stats command."""

import numpy as np
import pytest

from repro.errors import MetricError
from repro.finder import FinderConfig, find_hierarchical_gtls
from repro.generators import IndustrialSpec, generate_industrial, planted_gtl_graph
from repro.metrics import adhesion, edge_separability, kl_connectivity_l2
from repro.netlist import netlist_stats
from repro.netlist.builder import NetlistBuilder


# ---------------------------------------------------------------- (K,L)
def test_kl_connectivity_clique(two_cliques):
    # In a 4-clique: each pair has 1 direct edge + 2 common neighbors.
    assert kl_connectivity_l2(two_cliques, range(4)) == 3


def test_kl_connectivity_bridge_weakens(two_cliques):
    # Across the bridge, pairs like (0, 7) share nothing within length 2.
    assert kl_connectivity_l2(two_cliques, range(8)) == 0


def test_kl_connectivity_path():
    builder = NetlistBuilder()
    cells = builder.add_cells(3)
    builder.add_net(None, [cells[0], cells[1]])
    builder.add_net(None, [cells[1], cells[2]])
    netlist = builder.build()
    # Pair (0, 2): no direct edge, one common neighbor -> K = 1.
    assert kl_connectivity_l2(netlist, cells) == 1


def test_kl_connectivity_validation(triangle):
    with pytest.raises(MetricError):
        kl_connectivity_l2(triangle, [0])


# ---------------------------------------------------------------- separability
def test_edge_separability_clique(two_cliques):
    # 4-clique: min cut between two members is 3 (its degree inside).
    assert edge_separability(two_cliques, range(4), 0, 1) == 3.0


def test_edge_separability_across_bridge(two_cliques):
    assert edge_separability(two_cliques, range(8), 0, 7) == 1.0


def test_edge_separability_disconnected(two_cliques):
    assert edge_separability(two_cliques, [0, 1, 6, 7], 0, 7) == 0.0


def test_edge_separability_validation(two_cliques):
    with pytest.raises(MetricError):
        edge_separability(two_cliques, range(4), 0, 0)
    with pytest.raises(MetricError):
        edge_separability(two_cliques, range(4), 0, 7)


# ---------------------------------------------------------------- adhesion
def test_adhesion_clique(two_cliques):
    # 6 pairs, min cut 3 each.
    assert adhesion(two_cliques, range(4)) == pytest.approx(18.0)


def test_adhesion_guard(two_cliques):
    with pytest.raises(MetricError):
        adhesion(two_cliques, range(8), max_cells=4)
    with pytest.raises(MetricError):
        adhesion(two_cliques, [0])


def test_adhesion_higher_for_tangled_group(small_planted):
    netlist, truth = small_planted
    block_sample = sorted(truth[0])[:20]
    outside = [c for c in range(netlist.num_cells) if c not in truth[0]][:20]
    assert adhesion(netlist, block_sample) > adhesion(netlist, outside)


# ---------------------------------------------------------------- hierarchy
@pytest.fixture(scope="module")
def nested_design():
    """Two planted blocks, one twice as dense — flat finder sees both."""
    return planted_gtl_graph(3000, [120, 400], seed=17)


def test_hierarchical_finds_top_level(nested_design):
    netlist, truth = nested_design
    forest = find_hierarchical_gtls(
        netlist, FinderConfig(num_seeds=48, seed=18), max_depth=1
    )
    assert forest
    top_cells = [node.gtl.cells for node in forest]
    for block in truth:
        assert any(len(block & cells) / len(block) > 0.9 for cells in top_cells)


def test_hierarchical_nodes_nest_properly(nested_design):
    netlist, _ = nested_design
    forest = find_hierarchical_gtls(
        netlist, FinderConfig(num_seeds=48, seed=18), max_depth=2
    )
    for node in forest:
        for descendant in node.walk():
            if descendant is node:
                continue
            assert descendant.gtl.cells < node.gtl.cells
            assert descendant.gtl.score < node.gtl.score
            assert descendant.depth > node.depth


def test_hierarchical_summary_renders(nested_design):
    netlist, _ = nested_design
    forest = find_hierarchical_gtls(
        netlist, FinderConfig(num_seeds=12, seed=19), max_depth=1
    )
    text = forest[0].summary()
    assert "size=" in text and "score=" in text


def test_hierarchical_depth_zero_is_flat(nested_design):
    netlist, _ = nested_design
    forest = find_hierarchical_gtls(
        netlist, FinderConfig(num_seeds=12, seed=19), max_depth=0
    )
    assert all(not node.children for node in forest)


# ---------------------------------------------------------------- stats
def test_netlist_stats_values(mixed_netlist):
    stats = netlist_stats(mixed_netlist)
    assert stats.num_cells == 4
    assert stats.num_nets == 3
    assert stats.num_fixed == 1
    assert stats.max_net_degree == 3
    assert stats.num_components == 1
    assert stats.avg_net_degree == pytest.approx(7 / 3)
    text = stats.render()
    assert "net degree distribution" in text


def test_netlist_stats_histogram_pools_large():
    builder = NetlistBuilder()
    cells = builder.add_cells(15)
    builder.add_net("big", cells)
    builder.add_net("small", cells[:2])
    stats = netlist_stats(builder.build())
    histogram = dict(stats.net_degree_histogram)
    assert histogram[">10"] == 1
    assert histogram["2"] == 1


# ---------------------------------------------------------------- visualize
def test_ppm_congestion_and_placement(tmp_path):
    from repro.analysis import save_congestion_ppm, save_placement_ppm
    from repro.placement import place
    from repro.routing import build_congestion_map

    spec = IndustrialSpec(glue_gates=800, rom_blocks=((4, 8),), num_pads=16)
    netlist, truth = generate_industrial(spec, seed=20)
    placement = place(netlist, utilization=0.5)
    cmap = build_congestion_map(placement, grid=(8, 8))

    cpath = str(tmp_path / "congestion.ppm")
    save_congestion_ppm(cmap, cpath)
    header = open(cpath, "rb").read(20)
    assert header.startswith(b"P6\n")

    ppath = str(tmp_path / "placement.ppm")
    save_placement_ppm(placement, ppath, groups=[sorted(truth[0])])
    assert open(ppath, "rb").read(2) == b"P6"


def test_write_ppm_validation(tmp_path):
    from repro.analysis import write_ppm

    with pytest.raises(ValueError):
        write_ppm(str(tmp_path / "bad.ppm"), np.zeros((4, 4)))


def test_heat_color_bands():
    from repro.analysis.visualize import _heat_color

    assert _heat_color(1.2) == (255, 30, 30)
    assert _heat_color(0.95) == (255, 200, 40)
    assert _heat_color(0.0)[2] > _heat_color(0.0)[0]  # blueish when empty


# ---------------------------------------------------------------- CLI stats
def test_cli_stats(tmp_path, capsys):
    from repro.cli import main
    from repro.io.hgr import write_hgr

    netlist, _ = planted_gtl_graph(400, [40], seed=21)
    path = str(tmp_path / "g.hgr")
    write_hgr(netlist, path)
    assert main(["stats", path, "--rent"]) == 0
    output = capsys.readouterr().out
    assert "cells" in output
    assert "Rent exponent" in output
