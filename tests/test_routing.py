"""Tests for RUDY congestion maps and the paper's congestion statistics."""

import numpy as np
import pytest

from repro.errors import PlacementError
from repro.netlist.builder import NetlistBuilder
from repro.placement import Die
from repro.placement.placer import Placement
from repro.routing import build_congestion_map, congestion_stats


def _manual_placement(cells, nets, positions, die=None):
    builder = NetlistBuilder()
    ids = builder.add_cells(cells)
    for i, members in enumerate(nets):
        builder.add_net(f"n{i}", members)
    netlist = builder.build()
    die = die or Die(100, 100)
    x = np.array([positions[c][0] for c in range(cells)], dtype=float)
    y = np.array([positions[c][1] for c in range(cells)], dtype=float)
    return Placement(netlist=netlist, die=die, x=x, y=y)


def test_demand_integrates_to_wirelength():
    """Sum of RUDY demand equals the net's HPWL (spread conserves wire)."""
    placement = _manual_placement(
        2, [[0, 1]], {0: (10.0, 10.0), 1: (60.0, 40.0)}
    )
    cmap = build_congestion_map(placement, grid=(10, 10), capacity=1.0)
    hpwl = 50.0 + 30.0
    assert cmap.demand.sum() == pytest.approx(hpwl, rel=1e-6)


def test_demand_confined_to_bounding_box():
    placement = _manual_placement(
        2, [[0, 1]], {0: (12.0, 12.0), 1: (35.0, 35.0)}
    )
    cmap = build_congestion_map(placement, grid=(10, 10), capacity=1.0)
    # No demand in tiles entirely outside the bbox.
    assert cmap.demand[8, 8] == 0.0
    assert cmap.demand[0, 9] == 0.0
    assert cmap.demand[2, 2] > 0.0


def test_degenerate_net_registers_demand():
    placement = _manual_placement(
        2, [[0, 1]], {0: (50.0, 50.0), 1: (50.0, 50.0)}
    )
    cmap = build_congestion_map(placement, grid=(10, 10), capacity=1.0)
    assert cmap.demand.sum() > 0.0


def test_singleton_net_ignored():
    placement = _manual_placement(2, [[0], [0, 1]], {0: (10, 10), 1: (20, 20)})
    cmap = build_congestion_map(placement, grid=(4, 4), capacity=1.0)
    assert cmap.net_boxes[0] is None
    assert cmap.net_tiles(0) == []
    assert cmap.net_congestion(0) == 0.0


def test_capacity_calibration():
    placement = _manual_placement(
        3, [[0, 1], [1, 2]], {0: (5, 5), 1: (50, 50), 2: (95, 95)}
    )
    cmap = build_congestion_map(placement, grid=(8, 8), target_average_occupancy=0.5)
    assert cmap.occupancy.mean() == pytest.approx(0.5, rel=1e-6)


def test_grid_validation():
    placement = _manual_placement(2, [[0, 1]], {0: (0, 0), 1: (1, 1)})
    with pytest.raises(PlacementError):
        build_congestion_map(placement, grid=(0, 4))


def test_net_tiles_and_max_occupancy():
    placement = _manual_placement(
        2, [[0, 1]], {0: (5.0, 5.0), 1: (45.0, 5.0)}
    )
    cmap = build_congestion_map(placement, grid=(10, 10), capacity=1.0)
    tiles = cmap.net_tiles(0)
    assert all(j <= 1 for _, j in tiles)  # net stays in the bottom rows
    assert cmap.max_net_occupancy(0) >= cmap.net_congestion(0)


def test_congestion_stats_counts():
    placement = _manual_placement(
        4,
        [[0, 1], [2, 3]],
        {0: (5, 5), 1: (15, 5), 2: (60, 60), 3: (90, 90)},
    )
    cmap = build_congestion_map(placement, grid=(10, 10), capacity=1.0)
    stats = congestion_stats(cmap)
    assert stats.nets_through_90 >= stats.nets_through_100
    assert 0 <= stats.mean_occupancy <= stats.max_occupancy
    assert stats.average_congestion >= 0
    text = stats.summary()
    assert "nets through 100%" in text


def test_congestion_stats_empty_map():
    placement = _manual_placement(2, [[0], [1]], {0: (1, 1), 1: (2, 2)})
    cmap = build_congestion_map(placement, grid=(4, 4), capacity=1.0)
    stats = congestion_stats(cmap)
    assert stats.nets_through_100 == 0
    assert stats.average_congestion == 0.0


def test_worst_fraction_changes_average():
    placement = _manual_placement(
        4,
        [[0, 1], [2, 3]],
        {0: (5, 5), 1: (10, 5), 2: (50, 50), 3: (95, 95)},
    )
    cmap = build_congestion_map(placement, grid=(10, 10), capacity=2.0)
    all_nets = congestion_stats(cmap, worst_fraction=1.0)
    worst = congestion_stats(cmap, worst_fraction=0.5)
    assert worst.average_congestion >= all_nets.average_congestion
