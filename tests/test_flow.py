"""Tests of the composable stage API (:mod:`repro.flow`)."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.errors import FinderError, FlowError, ParseError
from repro.finder import FinderConfig, find_tangled_logic
from repro.flow import (
    CongestionStage,
    DetectStage,
    Flow,
    PartitionConfig,
    PartitionStage,
    PlaceStage,
    ResynthesisStage,
    SoftBlocksStage,
    encode_artifact,
    flow_from_manifest,
)
from repro.generators.random_gtl import planted_gtl_graph
from repro.service import ResultStore, fingerprint_netlist
from repro.service.store import SCHEMA_VERSION

CFG = FinderConfig(num_seeds=6, seed=3)


@pytest.fixture(scope="module")
def small():
    netlist, truth = planted_gtl_graph(800, [60], seed=5)
    return netlist, truth


def _pipeline():
    return Flow(
        [
            DetectStage(CFG),
            PartitionStage(),
            PlaceStage(),
            CongestionStage(grid=(8, 8)),
        ]
    )


# ----------------------------------------------------------------------
# Stage fingerprints
# ----------------------------------------------------------------------
def test_stage_fingerprints_depend_on_config_and_upstream(small):
    netlist, _ = small
    base = _pipeline().run(netlist)
    # Changing a mid-flow config re-keys that stage and everything after it,
    # but not the stages before it.
    changed = Flow(
        [
            DetectStage(CFG),
            PartitionStage(balance_tolerance=0.2),
            PlaceStage(),
            CongestionStage(grid=(8, 8)),
        ]
    ).run(netlist)
    assert changed["detect"].fingerprint == base["detect"].fingerprint
    assert changed["partition"].fingerprint != base["partition"].fingerprint
    assert changed["place"].fingerprint != base["place"].fingerprint
    assert changed["congestion"].fingerprint != base["congestion"].fingerprint


def test_stage_fingerprints_stable_across_processes(small):
    """The same flow over the same content must key identically in a fresh
    interpreter."""
    netlist, _ = small
    flow = _pipeline()
    local = [r.fingerprint for r in flow.run(netlist).results]
    script = (
        "from repro.generators.random_gtl import planted_gtl_graph\n"
        "from repro.finder import FinderConfig\n"
        "from repro.flow import (CongestionStage, DetectStage, Flow,\n"
        "                        PartitionStage, PlaceStage)\n"
        "netlist, _ = planted_gtl_graph(800, [60], seed=5)\n"
        "flow = Flow([DetectStage(FinderConfig(num_seeds=6, seed=3)),\n"
        "             PartitionStage(), PlaceStage(), CongestionStage(grid=(8, 8))])\n"
        "print('\\n'.join(r.fingerprint for r in flow.run(netlist).results))\n"
    )
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    output = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True, env=env, check=True
    ).stdout.split()
    assert output == local


def test_workers_is_execution_only(small):
    assert (
        DetectStage(CFG).config_fingerprint()
        == DetectStage(CFG.with_overrides(workers=8)).config_fingerprint()
    )


def test_manifest_and_api_share_one_fingerprint_space():
    """Configs built from JSON manifests (ints for floats, die as a list)
    must fingerprint identically to equal API-built configs."""
    from repro.flow import stage_from_entry
    from repro.placement.region import Die

    api = PlaceStage(die=Die(800.0, 600.0))
    manifest = stage_from_entry({"stage": "place", "die": [800, 600]})
    assert api.config_fingerprint() == manifest.config_fingerprint()
    assert (
        CongestionStage(capacity=1).config_fingerprint()
        == CongestionStage(capacity=1.0).config_fingerprint()
    )
    # Declared-int fields are not routed through float (would alias big seeds).
    big = 2**62 + 1
    assert (
        DetectStage(CFG.with_overrides(seed=big)).config_fingerprint()
        != DetectStage(CFG.with_overrides(seed=big + 1)).config_fingerprint()
    )


def test_place_stage_honors_pad_positions():
    from repro.netlist.builder import NetlistBuilder
    from repro.placement.region import Die

    builder = NetlistBuilder()
    pad_a = builder.add_cell("pad_a", fixed=True)
    pad_b = builder.add_cell("pad_b", fixed=True)
    cells = builder.add_cells(6)
    for cell in cells:
        builder.add_net(None, [pad_a, cell])
        builder.add_net(None, [cell, pad_b])
    netlist = builder.build()
    pads = {pad_a: (0.5, 0.5), pad_b: (7.5, 6.5)}
    placement = (
        Flow([PlaceStage(die=Die(10.0, 8.0), pad_positions=pads)])
        .run(netlist)
        .artifact("place")
    )
    for cell, (x, y) in pads.items():
        assert (placement.x[cell], placement.y[cell]) == (x, y)


# ----------------------------------------------------------------------
# Cache round-trips
# ----------------------------------------------------------------------
def test_cache_round_trip_bit_identical_every_stage(small, tmp_path):
    """Every built-in stage artifact must come back from the store
    bit-identical to the computed one."""
    netlist, truth = small
    flow = Flow(
        [
            DetectStage(CFG),
            PartitionStage(),
            SoftBlocksStage(groups=(tuple(truth[0]),), seed=1),
            PlaceStage(),
            CongestionStage(grid=(8, 8)),
            ResynthesisStage(cells=tuple(truth[0])),
        ]
    )
    with ResultStore(str(tmp_path)) as store:
        first = flow.run(netlist, store=store)
        assert not any(r.cached for r in first.results)
        second = flow.run(netlist, store=store)
    assert second.all_cached
    for computed, cached in zip(first.results, second.results):
        assert cached.fingerprint == computed.fingerprint
        # Bit-identity of the canonical payloads covers every array/float.
        assert encode_artifact(cached.kind, cached.artifact) == encode_artifact(
            computed.kind, computed.artifact
        )
    assert np.array_equal(first.artifact("place").x, second.artifact("place").x)
    assert first.artifact("detect") == second.artifact("detect")


def test_nondeterministic_stage_is_not_cached(small, tmp_path):
    netlist, _ = small
    flow = Flow([DetectStage(num_seeds=2, seed=None)])
    with ResultStore(str(tmp_path)) as store:
        flow.run(netlist, store=store)
        flow.run(netlist, store=store)
        assert len(store) == 0
        assert store.stats.puts == 0


def test_nondeterminism_poisons_downstream_caching(small, tmp_path):
    """A stage after a nondeterministic one must not be cached either (its
    input is not content-stable)."""
    netlist, _ = small
    flow = Flow([DetectStage(num_seeds=2, seed=None), PartitionStage()])
    with ResultStore(str(tmp_path)) as store:
        result = flow.run(netlist, store=store)
        assert not result["partition"].cached
        assert len(store) == 0


def test_congestion_requires_upstream_placement(small):
    netlist, _ = small
    with pytest.raises(FlowError, match="upstream"):
        Flow([CongestionStage()]).run(netlist)


# ----------------------------------------------------------------------
# Store schema versioning
# ----------------------------------------------------------------------
def test_store_schema_version_mismatch_is_a_miss(small, tmp_path):
    """Rows written under an older schema version are evicted and
    rewritten, never mis-decoded."""
    netlist, _ = small
    flow = Flow([DetectStage(CFG)])
    with ResultStore(str(tmp_path)) as store:
        flow.run(netlist, store=store)
        assert len(store) == 1
        store._conn.execute("UPDATE results SET schema_version = ?", (SCHEMA_VERSION - 1,))
        store._conn.commit()
        result = flow.run(netlist, store=store)
        assert not result["detect"].cached  # old row did not answer the run
        assert store.stats.puts == 2  # and was rewritten
        row = store._conn.execute("SELECT schema_version FROM results").fetchone()
        assert row[0] == SCHEMA_VERSION


def test_store_kind_revision_invalidates_only_that_kind(small, tmp_path):
    """Pre-revision partition rows (written before the PR-5 FM-start fix
    changed partition outputs) read as misses, while detection rows at the
    same base version stay warm."""
    from repro.flow.stages import PartitionStage
    from repro.service.store import row_schema_version

    netlist, _ = small
    flow = Flow([DetectStage(CFG), PartitionStage(seed=1)])
    with ResultStore(str(tmp_path)) as store:
        flow.run(netlist, store=store)
        assert row_schema_version("partition") == SCHEMA_VERSION + 1
        # Emulate a row persisted by the pre-fix release (base version).
        store._conn.execute(
            "UPDATE results SET schema_version = ? WHERE kind = 'partition'",
            (SCHEMA_VERSION,),
        )
        store._conn.commit()
        result = flow.run(netlist, store=store)
        assert result["detect"].cached  # unaffected kind stays warm
        assert not result["partition"].cached  # stale pre-fix row evicted
        row = store._conn.execute(
            "SELECT schema_version FROM results WHERE kind = 'partition'"
        ).fetchone()
        assert row[0] == row_schema_version("partition")


def test_store_kind_collision_is_a_miss(small, tmp_path):
    netlist, _ = small
    with ResultStore(str(tmp_path)) as store:
        result = Flow([DetectStage(CFG)]).run(netlist, store=store)
        store._conn.execute("UPDATE results SET kind = 'placement'")
        store._conn.commit()
        assert store.get_payload(result["detect"].fingerprint, kind="finder_report") is None
        assert len(store) == 0


# ----------------------------------------------------------------------
# Config override validation
# ----------------------------------------------------------------------
def test_finder_config_rejects_unknown_overrides():
    with pytest.raises(FinderError, match=r"num_seeds.*metric"):
        FinderConfig().with_overrides(num_seedz=4)


def test_stage_config_rejects_unknown_overrides():
    with pytest.raises(FlowError, match=r"balance_tolerance.*max_passes"):
        PartitionConfig().with_overrides(tolerance=0.2)
    with pytest.raises(FlowError, match="valid fields"):
        PlaceStage(utilisation=0.5)


# ----------------------------------------------------------------------
# Deprecated shims
# ----------------------------------------------------------------------
def test_detect_shim_warns_and_matches_new_api(small, tmp_path, monkeypatch):
    from repro.experiments.common import detect as old_detect
    from repro.flow import detect as new_detect

    netlist, _ = small
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    with pytest.deprecated_call():
        old = old_detect(netlist, CFG)
    new = new_detect(netlist, CFG)
    assert old == new
    with ResultStore(str(tmp_path)) as store:
        assert len(store) == 1  # both calls shared one cache entry


def test_place_with_soft_blocks_shim_warns_and_matches_new_api(small):
    from repro.apps import place_with_soft_blocks as old_api
    from repro.flow import place_with_soft_blocks as new_api

    netlist, truth = small
    with pytest.deprecated_call():
        old = old_api(netlist, [truth[0]], rng=2, utilization=0.5)
    new = new_api(netlist, [truth[0]], seed=2, utilization=0.5)
    assert old.netlist is netlist and new.netlist is netlist
    assert np.array_equal(old.x, new.x) and np.array_equal(old.y, new.y)


# ----------------------------------------------------------------------
# Manifests + CLI
# ----------------------------------------------------------------------
def _write_manifest(tmp_path, netlist):
    from repro.io.hgr import write_hgr

    design = tmp_path / "design.hgr"
    write_hgr(netlist, str(design))
    manifest = tmp_path / "flow.json"
    manifest.write_text(
        json.dumps(
            {
                "designs": ["design.hgr"],
                "stages": [
                    {"stage": "detect", "num_seeds": 6, "seed": 3},
                    {"stage": "partition"},
                    {"stage": "place"},
                    {"stage": "congestion", "grid": [8, 8]},
                ],
            }
        )
    )
    return manifest


def test_flow_manifest_parses_and_runs(small, tmp_path):
    netlist, _ = small
    manifest = flow_from_manifest(
        json.loads(_write_manifest(tmp_path, netlist).read_text()),
        base_dir=str(tmp_path),
    )
    assert [s.name for s in manifest.flow.stages] == [
        "detect", "partition", "place", "congestion",
    ]
    result = manifest.flow.run(netlist)
    assert result["congestion"].artifact.demand.shape == (8, 8)


def test_flow_manifest_rejects_unknown_stage():
    with pytest.raises(FlowError, match="available stages"):
        flow_from_manifest({"designs": ["x.hgr"], "stages": [{"stage": "routeit"}]})


def test_flow_manifest_rejects_unknown_field():
    with pytest.raises(FlowError, match="valid fields"):
        flow_from_manifest(
            {"designs": ["x.hgr"], "stages": [{"stage": "partition", "tol": 0.2}]}
        )


def test_cli_flow_run_cold_then_warm(small, tmp_path, capsys):
    from repro.cli import main

    netlist, _ = small
    manifest = _write_manifest(tmp_path, netlist)
    cache = str(tmp_path / "cache")
    assert main(["flow", "run", str(manifest), "--cache-dir", cache, "--quiet"]) == 0
    cold = capsys.readouterr().out
    assert cold.count(" run ") >= 4 and "0 hit(s)" in cold
    assert main(["flow", "run", str(manifest), "--cache-dir", cache, "--quiet"]) == 0
    warm = capsys.readouterr().out
    assert warm.count(" hit ") >= 4
    assert "4 hit(s) / 0 miss(es)" in warm


def test_cli_flow_run_reports_bad_manifest(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "bad.json"
    bad.write_text('{"designs": ["x.hgr"], "stages": []}')
    assert main(["flow", "run", str(bad), "--no-cache", "--quiet"]) == 2
    assert "no stages" in capsys.readouterr().err


# ----------------------------------------------------------------------
# load_design dispatch
# ----------------------------------------------------------------------
def test_load_design_dispatch(small, tmp_path):
    from repro.io import load_design
    from repro.io.hgr import read_hgr, write_hgr

    netlist, _ = small
    path = tmp_path / "d.hgr"
    write_hgr(netlist, str(path))
    # Dispatches to the hgr reader (same content fingerprint).
    assert fingerprint_netlist(load_design(str(path))) == fingerprint_netlist(
        read_hgr(str(path))
    )
    edges = tmp_path / "d.edges"
    edges.write_text("a b\nb c\n")
    assert load_design(str(edges)).num_cells == 3


def test_load_design_unknown_extension(tmp_path):
    from repro.io import load_design

    path = tmp_path / "design.xyz"
    path.write_text("whatever")
    with pytest.raises(ParseError, match=r"\.aux.*\.hgr.*edge list"):
        load_design(str(path))


def test_load_design_missing_file(tmp_path):
    from repro.io import load_design

    with pytest.raises(ParseError, match="does not exist"):
        load_design(str(tmp_path / "nope.hgr"))


# ----------------------------------------------------------------------
# Facade
# ----------------------------------------------------------------------
def test_repro_facade_reexports_flow_api():
    import repro

    assert repro.Flow is Flow
    assert repro.DetectStage is DetectStage
    assert callable(repro.load_design)
    with pytest.raises(AttributeError):
        repro.not_a_symbol


def test_flow_detect_matches_plain_finder(small):
    from repro.flow import detect

    netlist, _ = small
    assert detect(netlist, CFG, cache_dir="").gtls == find_tangled_logic(netlist, CFG).gtls


# ----------------------------------------------------------------------
# Incremental detection stage
# ----------------------------------------------------------------------
def test_incremental_detect_stage_patches_across_edits(small, tmp_path):
    from repro.flow import IncrementalDetectStage
    from repro.generators.perturb import rewire_pins
    from repro.service.codec import report_to_dict

    netlist, _ = small
    cfg = FinderConfig(num_seeds=6, seed=3, max_order_length=20)
    with ResultStore(str(tmp_path)) as store:
        first = Flow([IncrementalDetectStage(cfg)]).run(netlist, store=store)
        result = first["incremental_detect"]
        assert result.metadata["incremental_mode"] == "full"
        assert result.metadata["seeds_recomputed"] == cfg.num_seeds

        edited = rewire_pins(netlist, 0.001, rng=1)
        second = Flow([IncrementalDetectStage(cfg)]).run(edited, store=store)
        meta = second["incremental_detect"].metadata
        assert meta["incremental_mode"] == "incremental"
        assert 0 < meta["seeds_recomputed"] < meta["seeds_total"]
        assert meta["dirty_cells"] > 0

        # Parity: the patched stage artifact equals a cold detection.
        cold = report_to_dict(find_tangled_logic(edited, cfg))
        patched = report_to_dict(second["incremental_detect"].artifact)
        cold.pop("runtime_seconds")
        patched.pop("runtime_seconds")
        assert patched == cold


def test_incremental_detect_stage_without_store_runs_full(small):
    from repro.flow import IncrementalDetectStage

    netlist, _ = small
    cfg = FinderConfig(num_seeds=4, seed=3, max_order_length=20)
    result = Flow([IncrementalDetectStage(cfg)]).run(netlist)
    report = result["incremental_detect"].artifact
    assert report.num_gtls >= 0  # plain DetectStage behaviour, no store
    assert "incremental_mode" not in result["incremental_detect"].metadata
