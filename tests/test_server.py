"""Tests of the detection daemon (:mod:`repro.server`).

Three layers:

* the :class:`~repro.server.queue.JobQueue` scheduling semantics —
  backpressure, priority ordering, starvation freedom, cancellation and
  drain — exercised directly (deterministic, no sockets);
* the pack-ahead corpus (:mod:`repro.io.corpus`) and the daemon's design
  LRU;
* the live daemon over a real Unix socket: cold/warm submits, report
  parity with the offline :class:`~repro.service.jobs.BatchRunner`,
  status/cancel/shutdown, and the CLI subcommands against it.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.cli import main
from repro.errors import ParseError, ServerBusy, ServerError
from repro.finder import FinderConfig, find_tangled_logic
from repro.generators.random_gtl import planted_gtl_graph
from repro.io import read_header
from repro.io.corpus import (
    corpus_designs_from_manifest,
    load_pack_index,
    pack_corpus,
)
from repro.io.hgr import write_hgr
from repro.server import Client, JobQueue, JobRecord, ServerConfig, ServerDaemon
from repro.server.daemon import DesignCache
from repro.server.queue import CANCELLED, DONE
from repro.service.codec import report_from_dict, report_to_dict
from repro.service.fingerprint import fingerprint_netlist

CFG = {"num_seeds": 6, "seed": 3}


def _job(priority="batch", label=""):
    return JobRecord(kind="detect", priority=priority, request={}, label=label)


# ----------------------------------------------------------------------
# JobQueue semantics
# ----------------------------------------------------------------------
def test_queue_fifo_within_class():
    queue = JobQueue()
    first, second = _job(label="a"), _job(label="b")
    assert queue.submit(first) == 1
    assert queue.submit(second) == 2
    assert queue.next_job() is first
    assert queue.next_job() is second


def test_queue_backpressure_rejects_with_retry_after():
    queue = JobQueue(max_depth=2, retry_after_s=0.5)
    queue.submit(_job())
    queue.submit(_job())
    with pytest.raises(ServerBusy) as excinfo:
        queue.submit(_job())
    assert excinfo.value.retry_after_s > 0.5  # scaled by the backlog
    assert queue.rejected == 1
    assert queue.depth() == 2  # the rejected job was never admitted


def test_queue_priority_ordering_under_load():
    queue = JobQueue()
    sweep = _job("sweep")
    batch = _job("batch")
    interactive = _job("interactive")
    queue.submit(sweep)
    queue.submit(batch)
    queue.submit(interactive)
    order = [queue.next_job().priority for _ in range(3)]
    assert order == ["interactive", "batch", "sweep"]


def test_queue_starvation_freedom():
    """A sweep under sustained interactive load is served within the limit."""
    queue = JobQueue(starvation_limit=2)
    queue.submit(_job("sweep"))
    for _ in range(6):
        queue.submit(_job("interactive"))
    order = [queue.next_job().priority for _ in range(7)]
    # Two interactive dispatches skip the sweep; the third serves it.
    assert order[:3] == ["interactive", "interactive", "sweep"]
    assert order[3:] == ["interactive"] * 4


def test_queue_cancel_queued_job():
    queue = JobQueue()
    record = _job()
    queue.submit(record)
    cancelled = queue.cancel(record.job_id)
    assert cancelled.state == CANCELLED
    assert queue.depth() == 0
    assert queue.cancelled == 1
    # Still queryable after cancellation.
    assert queue.get(record.job_id) is record


def test_queue_cancel_rejects_non_queued():
    queue = JobQueue()
    record = _job()
    queue.submit(record)
    queue.next_job()
    record.state = "running"
    with pytest.raises(ServerError, match="only queued"):
        queue.cancel(record.job_id)
    with pytest.raises(ServerError, match="unknown job id"):
        queue.cancel("nope")


def test_queue_close_drain_serves_backlog():
    queue = JobQueue()
    first, second = _job(), _job()
    queue.submit(first)
    queue.submit(second)
    assert queue.close(drain=True) == []
    assert queue.next_job() is first
    assert queue.next_job() is second
    assert queue.next_job() is None  # closed + empty
    with pytest.raises(ServerError, match="shutting down"):
        queue.submit(_job())


def test_queue_close_without_drain_cancels_backlog():
    queue = JobQueue()
    record = _job()
    queue.submit(record)
    dropped = queue.close(drain=False)
    assert dropped == [record]
    assert record.state == CANCELLED
    assert queue.next_job() is None


def test_queue_next_job_timeout():
    queue = JobQueue()
    assert queue.next_job(timeout=0.05) is None


def test_queue_close_wakes_blocked_scheduler():
    queue = JobQueue()
    seen = []
    thread = threading.Thread(target=lambda: seen.append(queue.next_job()))
    thread.start()
    time.sleep(0.1)
    queue.close(drain=True)
    thread.join(timeout=5)
    assert not thread.is_alive()
    assert seen == [None]


def test_record_subscribe_replays_history():
    record = _job()
    record.publish("queued", position=1)
    subscriber = record.subscribe()  # late subscriber
    record.publish("started")
    events = [subscriber.get(timeout=1)["event"] for _ in range(2)]
    assert events == ["queued", "started"]
    record.unsubscribe(subscriber)
    record.publish("result")
    assert subscriber.empty()


def test_queue_history_evicts_only_terminal_records():
    queue = JobQueue(history=2)
    live = _job()
    queue.submit(live)
    done = []
    for _ in range(3):
        record = _job()
        queue.submit(record)
        queue.cancel(record.job_id)
        done.append(record)
    assert queue.get(live.job_id) is live  # live jobs never evicted
    assert queue.get(done[0].job_id) is None  # oldest terminal dropped
    assert queue.get(done[-1].job_id) is done[-1]


# ----------------------------------------------------------------------
# Pack-ahead corpus + design LRU
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """Two small designs on disk plus their netlists."""
    from repro.io import load_design

    root = tmp_path_factory.mktemp("corpus")
    designs = {}
    for name, seed in (("a", 3), ("b", 4)):
        netlist, _ = planted_gtl_graph(300, [40], seed=seed)
        path = str(root / f"{name}.hgr")
        write_hgr(netlist, path)
        # Reload: .hgr keeps topology only, so the on-disk content (the
        # daemon's view) fingerprints differently from the generator's.
        designs[name] = (path, load_design(path))
    return designs


def test_manifest_dialects(tmp_path):
    base = str(tmp_path)
    expected = [os.path.join(base, "a.hgr")]
    assert corpus_designs_from_manifest({"designs": ["a.hgr"]}, base) == expected
    assert corpus_designs_from_manifest(
        {"jobs": [{"design": "a.hgr"}, {"design": "a.hgr"}]}, base
    ) == expected  # deduplicated
    assert corpus_designs_from_manifest(["a.hgr"], base) == expected
    with pytest.raises(ParseError):
        corpus_designs_from_manifest({"nope": []}, base)
    with pytest.raises(ParseError):
        corpus_designs_from_manifest({"designs": []}, base)


def test_pack_corpus_is_idempotent(corpus, tmp_path):
    paths = [corpus["a"][0], corpus["b"][0]]
    out = str(tmp_path / "packed")
    first = pack_corpus(paths, out)
    assert [entry.packed for entry in first] == [True, True]
    second = pack_corpus(paths, out)
    assert [entry.packed for entry in second] == [False, False]
    index = load_pack_index(out)
    assert set(index) == {os.path.abspath(p) for p in paths}
    for entry in index.values():
        assert read_header(entry.pack_path).fingerprint == entry.fingerprint


def test_pack_corpus_repacks_touched_source(corpus, tmp_path):
    path, _ = corpus["a"]
    out = str(tmp_path / "packed")
    pack_corpus([path], out)
    os.utime(path, ns=(1, 1))  # stat changes, content does not
    entries = pack_corpus([path], out)
    assert entries[0].packed is True


def test_load_pack_index_missing_and_malformed(tmp_path):
    assert load_pack_index(str(tmp_path)) == {}
    bad = tmp_path / "pack_index.json"
    bad.write_text('{"version": 99, "designs": {}}')
    with pytest.raises(ParseError, match="version"):
        load_pack_index(str(tmp_path))


def test_design_cache_lru_and_stat_invalidation(corpus):
    cache = DesignCache(max_designs=1)
    path_a, netlist_a = corpus["a"]
    path_b, _ = corpus["b"]
    loaded, fingerprint = cache.get(path_a)
    assert fingerprint == fingerprint_netlist(netlist_a)
    assert cache.get(path_a)[0] is loaded  # hit: same object
    cache.get(path_b)  # evicts a (max_designs=1)
    assert len(cache) == 1
    cache.get(path_a)
    assert cache.stats.hits == 1 and cache.stats.misses == 3

    os.utime(path_a, ns=(2, 2))
    reloaded, _ = cache.get(path_a)
    assert reloaded is not loaded
    assert cache.stats.reloads == 1


def test_design_cache_serves_from_pack_index(corpus, tmp_path):
    path, netlist = corpus["a"]
    out = str(tmp_path / "packed")
    pack_corpus([path], out)
    cache = DesignCache(pack_index=out)
    loaded, fingerprint = cache.get(path)
    assert cache.stats.pack_loads == 1
    assert fingerprint == fingerprint_netlist(netlist)
    assert loaded.num_cells == netlist.num_cells


def test_design_cache_missing_file():
    cache = DesignCache()
    with pytest.raises(ServerError, match="cannot stat"):
        cache.get("/nonexistent/design.hgr")


# ----------------------------------------------------------------------
# Live daemon over a real socket
# ----------------------------------------------------------------------
@pytest.fixture()
def daemon_factory(tmp_path):
    """Start daemons on per-test sockets; always shut them down."""
    started = []

    def start(**overrides):
        overrides.setdefault(
            "socket_path", str(tmp_path / f"d{len(started)}.sock")
        )
        overrides.setdefault("cache_dir", str(tmp_path / "cache"))
        start_scheduler = overrides.pop("start_scheduler", True)
        daemon = ServerDaemon(
            ServerConfig(**overrides), start_scheduler=start_scheduler
        )
        daemon.start()
        started.append(daemon)
        return daemon, Client(daemon.config.socket_path)

    yield start
    for daemon in started:
        daemon.shutdown(drain=False)


def test_daemon_ping_and_status(corpus, daemon_factory):
    daemon, client = daemon_factory()
    pong = client.ping()
    assert pong["event"] == "pong" and pong["pid"] == os.getpid()
    status = client.status()
    assert status["queue"]["depth"] == 0
    assert status["workers"] == 1


def test_daemon_cold_then_warm_bit_identical_and_fast(corpus, daemon_factory):
    daemon, client = daemon_factory()
    path, netlist = corpus["a"]
    cold = client.submit(path, config=CFG, priority="interactive")
    assert cold["event"] == "result" and cold["cached"] is False
    batches_after_cold = daemon.pool.stats.batches

    began = time.perf_counter()
    warm = client.submit(path, config=CFG)
    warm_seconds = time.perf_counter() - began
    assert warm["cached"] is True
    assert warm["report"] == cold["report"]  # bit-identical payloads
    assert warm_seconds < 0.05  # the acceptance bound: no spawn, no queue
    # The warm answer never touched the pool or the queue.
    assert daemon.pool.stats.batches == batches_after_cold
    assert daemon.counters["warm_hits"] == 1
    assert daemon.queue.submitted == 1

    # Identical to an offline run of the same job (modulo wall-clock).
    offline = find_tangled_logic(netlist, FinderConfig(**CFG))
    offline_dict = report_to_dict(offline)
    offline_dict.pop("runtime_seconds")
    cold_dict = dict(cold["report"])
    cold_dict.pop("runtime_seconds")
    assert offline_dict == cold_dict
    assert report_from_dict(warm["report"]).gtls == offline.gtls


def test_daemon_streams_lifecycle_events(corpus, daemon_factory):
    daemon, client = daemon_factory()
    events = []
    client.submit(corpus["a"][0], config=CFG, on_event=events.append)
    assert [e["event"] for e in events] == ["queued", "started", "result"]
    job_id = events[0]["job_id"]
    job = client.status(job_id)["job"]
    assert job["state"] == DONE
    # result op replays the terminal payload after the fact.
    replay = client.result(job_id)
    assert replay["event"] == "result" and "report" in replay


def test_daemon_flow_cold_then_warm(corpus, daemon_factory):
    daemon, client = daemon_factory()
    stages = [{"stage": "detect", "num_seeds": 6, "seed": 3}]
    cold = client.submit(corpus["a"][0], kind="flow", stages=stages)
    assert [s["cached"] for s in cold["stages"]] == [False]
    warm = client.submit(corpus["a"][0], kind="flow", stages=stages)
    assert warm["cached"] is True
    assert [s["fingerprint"] for s in warm["stages"]] == [
        s["fingerprint"] for s in cold["stages"]
    ]


def test_daemon_backpressure_rejection(corpus, daemon_factory):
    daemon, client = daemon_factory(max_queue_depth=1, start_scheduler=False)
    first = client.submit(
        corpus["a"][0], config={"num_seeds": 6, "seed": 11}, wait=False
    )
    assert first["event"] == "queued"
    with pytest.raises(ServerBusy) as excinfo:
        client.submit(
            corpus["a"][0], config={"num_seeds": 6, "seed": 12}, wait=False
        )
    assert excinfo.value.retry_after_s > 0
    assert daemon.queue.rejected == 1


def test_daemon_cancel_queued_job(corpus, daemon_factory):
    daemon, client = daemon_factory(start_scheduler=False)
    queued = client.submit(
        corpus["a"][0], config={"num_seeds": 6, "seed": 13}, wait=False
    )
    response = client.cancel(queued["job_id"])
    assert response["state"] == CANCELLED
    assert client.status(queued["job_id"])["job"]["state"] == CANCELLED
    with pytest.raises(ServerError):  # cancelled is terminal
        client.result(queued["job_id"])


def test_daemon_drain_completes_inflight_work(corpus, daemon_factory):
    daemon, client = daemon_factory()
    job_ids = [
        client.submit(
            corpus["a"][0], config={"num_seeds": 6, "seed": 20 + i},
            wait=False,
        )["job_id"]
        for i in range(3)
    ]
    client.shutdown(drain=True)
    assert daemon.wait_until_stopped(timeout=60)
    states = [daemon.queue.get(job_id).state for job_id in job_ids]
    assert states == [DONE, DONE, DONE]  # nothing dropped on the floor


def test_daemon_shutdown_without_drain_cancels_backlog(corpus, daemon_factory):
    daemon, client = daemon_factory(start_scheduler=False)
    queued = client.submit(
        corpus["a"][0], config={"num_seeds": 6, "seed": 31}, wait=False
    )
    client.shutdown(drain=False)
    assert daemon.wait_until_stopped(timeout=30)
    assert daemon.queue.get(queued["job_id"]).state == CANCELLED


def test_daemon_rejects_bad_requests(corpus, daemon_factory):
    daemon, client = daemon_factory()
    with pytest.raises(ServerError, match="unknown op"):
        client._roundtrip({"op": "dance"})
    with pytest.raises(ServerError, match="design"):
        client._roundtrip({"op": "submit", "kind": "detect"})
    with pytest.raises(ServerError, match="unknown job id"):
        client.status("feedfacecafe")
    with pytest.raises(ServerError, match="cannot stat"):
        client.submit("/nonexistent/x.hgr", config=CFG)


def test_daemon_refuses_second_daemon_on_live_socket(corpus, daemon_factory):
    daemon, _ = daemon_factory()
    with pytest.raises(ServerError, match="already listening"):
        ServerDaemon(
            ServerConfig(
                socket_path=daemon.config.socket_path,
                cache_dir=daemon.config.cache_dir,
            )
        ).start()


def test_daemon_claims_stale_socket(tmp_path, daemon_factory):
    import socket as socket_module

    stale = str(tmp_path / "stale.sock")
    leftover = socket_module.socket(
        socket_module.AF_UNIX, socket_module.SOCK_STREAM
    )
    leftover.bind(stale)
    leftover.close()  # socket file stays behind, nobody listening
    daemon, client = daemon_factory(socket_path=stale)
    assert client.ping()["event"] == "pong"


def test_client_without_daemon_raises():
    with pytest.raises(ServerError, match="is `repro serve` running"):
        Client("/tmp/no-such-repro-daemon.sock").ping()


# ----------------------------------------------------------------------
# CLI subcommands against a live daemon
# ----------------------------------------------------------------------
def test_cli_submit_and_status_roundtrip(corpus, daemon_factory, capsys):
    daemon, _ = daemon_factory()
    socket_path = daemon.config.socket_path
    path, _ = corpus["a"]
    assert main(["submit", path, "--socket", socket_path,
                 "--seeds", "6", "--seed", "3", "--quiet"]) == 0
    first = capsys.readouterr().out
    assert "computed in" in first
    assert main(["submit", path, "--socket", socket_path,
                 "--seeds", "6", "--seed", "3", "--quiet"]) == 0
    second = capsys.readouterr().out
    assert "cache in" in second
    assert first.splitlines()[0] == second.splitlines()[0]  # same summary

    assert main(["status", "--socket", socket_path]) == 0
    status_out = capsys.readouterr().out
    assert "1 warm hit(s)" in status_out
    assert main(["status", "--socket", socket_path, "--json"]) == 0
    assert '"warm_hits": 1' in capsys.readouterr().out


def test_cli_submit_no_wait_then_poll(corpus, daemon_factory, capsys):
    daemon, client = daemon_factory()
    socket_path = daemon.config.socket_path
    assert main(["submit", corpus["b"][0], "--socket", socket_path,
                 "--seeds", "6", "--seed", "42", "--no-wait"]) == 0
    out = capsys.readouterr().out
    job_id = out.split("job ")[1].split()[0]
    for _ in range(200):
        if client.status(job_id)["job"]["state"] == DONE:
            break
        time.sleep(0.05)
    assert main(["status", job_id, "--socket", socket_path]) == 0
    assert "done" in capsys.readouterr().out


def test_cli_pack_out_dir(corpus, tmp_path, capsys):
    import json

    manifest = tmp_path / "manifest.json"
    manifest.write_text(json.dumps({"designs": [corpus["a"][0]]}))
    out_dir = str(tmp_path / "packed")
    assert main(["pack", str(manifest), "--out-dir", out_dir]) == 0
    assert "1 packed" in capsys.readouterr().out
    assert main(["pack", str(manifest), "--out-dir", out_dir]) == 0
    assert "1 reused" in capsys.readouterr().out
    assert load_pack_index(out_dir)


def test_cli_status_shutdown(corpus, daemon_factory, capsys):
    daemon, _ = daemon_factory()
    assert main(["status", "--socket", daemon.config.socket_path,
                 "--shutdown"]) == 0
    assert "shutdown requested" in capsys.readouterr().out
    assert daemon.wait_until_stopped(timeout=30)


# ----------------------------------------------------------------------
# Delta submits (protocol 2)
# ----------------------------------------------------------------------
#: Small explicit order length so a localized edit leaves most seed
#: footprints clean (see repro.incremental) — the regime delta submits
#: are built for.
DELTA_CFG = {"num_seeds": 6, "seed": 3, "max_order_length": 20}


def test_daemon_delta_submit_end_to_end(corpus, daemon_factory):
    """Edit travels as JSON; the design is never re-shipped or re-read."""
    from repro.generators.perturb import rewire_pins
    from repro.service.fingerprint import job_fingerprint

    daemon, client = daemon_factory()
    path, netlist = corpus["a"]
    base = client.submit(path, config=DELTA_CFG, priority="interactive")
    assert base["incremental"]["mode"] == "full"

    edited, delta = rewire_pins(netlist, 0.002, rng=1, return_delta=True)
    misses_before = daemon.designs.stats.misses
    patched = client.submit(
        path, config=DELTA_CFG, delta=delta.to_dict(), priority="interactive"
    )
    assert patched["event"] == "result" and patched["cached"] is False
    assert patched["fingerprint"] == job_fingerprint(
        edited, FinderConfig(**DELTA_CFG)
    )
    provenance = patched["incremental"]
    assert provenance["mode"] == "incremental"
    assert provenance["base_fingerprint"] == fingerprint_netlist(netlist)
    assert 0 < provenance["seeds_recomputed"] < provenance["seeds_total"]
    # The base design was answered from the warm cache, not re-loaded.
    assert daemon.designs.stats.misses == misses_before

    # Parity: the patched report equals an offline cold run on the edit.
    offline = report_to_dict(
        find_tangled_logic(edited, FinderConfig(**DELTA_CFG))
    )
    offline.pop("runtime_seconds")
    served = dict(patched["report"])
    served.pop("runtime_seconds")
    assert served == offline

    # Same delta again: answered from the result store, no recompute.
    warm = client.submit(path, config=DELTA_CFG, delta=delta.to_dict())
    assert warm["cached"] is True
    assert "incremental" not in warm


def test_daemon_delta_submit_validation(corpus, daemon_factory):
    daemon, client = daemon_factory()
    path, _ = corpus["a"]
    with pytest.raises(ServerError, match='kind "detect"'):
        client.submit(path, kind="flow", delta={"version": 1})
    with pytest.raises(ServerError, match="bad delta payload"):
        client.submit(path, config=DELTA_CFG, delta={"version": 999})
    with pytest.raises(ServerError, match="delta"):
        # Raw request with a non-dict delta (bypasses client validation).
        client._roundtrip(
            {"op": "submit", "kind": "detect", "design": path,
             "delta": "not-a-dict"}
        )


# ----------------------------------------------------------------------
# Job groups and per-class depths (sharded sweeps over the daemon)
# ----------------------------------------------------------------------
def test_status_reports_per_priority_class_depths(corpus, daemon_factory):
    daemon, client = daemon_factory(start_scheduler=False)
    path, _ = corpus["a"]
    client.submit(path, config={"num_seeds": 6, "seed": 40},
                  priority="interactive", wait=False)
    for seed in (41, 42):
        client.submit(path, config={"num_seeds": 6, "seed": seed},
                      priority="sweep", wait=False)
    depths = client.status()["queue"]["depths"]
    assert depths == {"interactive": 1, "batch": 0, "sweep": 2}


def test_cli_status_prints_per_class_depths(corpus, daemon_factory, capsys):
    daemon, client = daemon_factory(start_scheduler=False)
    path, _ = corpus["a"]
    client.submit(path, config={"num_seeds": 6, "seed": 50},
                  priority="sweep", wait=False, group="sweep/shard-0")
    assert main(["status", "--socket", daemon.config.socket_path]) == 0
    out = capsys.readouterr().out
    assert "(interactive=0 batch=0 sweep=1)" in out
    assert "[sweep/shard-0]" in out


def test_status_group_filter(corpus, daemon_factory):
    daemon, client = daemon_factory(start_scheduler=False)
    path, _ = corpus["a"]
    client.submit(path, config={"num_seeds": 6, "seed": 60},
                  priority="sweep", wait=False, group="night/shard-0")
    client.submit(path, config={"num_seeds": 6, "seed": 61},
                  priority="sweep", wait=False, group="night/shard-1")
    client.submit(path, config={"num_seeds": 6, "seed": 62}, wait=False)
    grouped = client.status(group="night/shard-1")["jobs"]
    assert len(grouped) == 1
    assert grouped[0]["group"] == "night/shard-1"
    assert len(client.status()["jobs"]) == 3


def test_sharded_sweep_via_daemon_matches_local(corpus, daemon_factory):
    """--via-daemon parity: priority-class-sweep submits, merged back into
    point order, bit-identical to the local coordinator."""
    from repro.service.aggregate import point_rows
    from repro.service.coordinator import SweepCoordinator

    daemon, _ = daemon_factory()
    designs = [("a", corpus["a"][1]), ("b", corpus["b"][1])]
    design_paths = {"a": corpus["a"][0], "b": corpus["b"][0]}
    base = FinderConfig(num_seeds=4, seed=3)
    grid = {"lambda_skip": [0, 10]}

    remote = SweepCoordinator(
        2, cache_dir=None, use_cache=False,
        daemon_socket=daemon.config.socket_path, group="parity",
    ).run(designs, base, grid, design_paths=design_paths)
    assert remote.mode == "daemon"
    assert all(result.ok for result in remote.job_results)
    local = SweepCoordinator(2, cache_dir=None, use_cache=False).run(
        designs, base, grid
    )

    def rows(outcome):
        out = point_rows(outcome)
        for row in out:
            row.pop("runtime_seconds")
            row.pop("cached")
            row["report"].pop("runtime_seconds")
        return out

    assert rows(remote) == rows(local)
    # Every daemon-side job carries the coordinator's shard group.
    with Client(daemon.config.socket_path) as client:
        jobs = client.status(group="parity/shard-0")["jobs"]
    assert jobs and all(job["priority"] == "sweep" for job in jobs)


def test_via_daemon_requires_design_paths(corpus, daemon_factory):
    from repro.errors import ServiceError
    from repro.service.coordinator import SweepCoordinator

    daemon, _ = daemon_factory()
    coordinator = SweepCoordinator(
        2, cache_dir=None, use_cache=False,
        daemon_socket=daemon.config.socket_path,
    )
    with pytest.raises(ServiceError, match="design_paths"):
        coordinator.run(
            [("a", corpus["a"][1])], FinderConfig(num_seeds=4, seed=3),
            {"lambda_skip": [0]},
        )
