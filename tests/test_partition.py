"""Tests for FM bisection and recursive-bisection tools."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.metrics.rent import estimate_rent_exponent_from_prefixes
from repro.netlist.builder import NetlistBuilder
from repro.netlist.ops import cut_size
from repro.partition import (
    FMPartitioner,
    bisection_ordering,
    estimate_rent_exponent_bisection,
    fm_bisect,
    recursive_bisection,
)


def test_fm_two_cliques_finds_natural_cut(two_cliques):
    result = fm_bisect(two_cliques, rng=1)
    assert result.cut == 1
    side_of_0 = result.sides[0]
    assert all(result.sides[c] == side_of_0 for c in range(4))
    assert all(result.sides[c] == 1 - side_of_0 for c in range(4, 8))


def test_fm_respects_balance(two_cliques):
    result = fm_bisect(two_cliques, balance_tolerance=0.05, rng=2)
    area0 = len(result.side_cells(0))
    assert 3 <= area0 <= 5


def test_fm_requires_two_cells(triangle):
    with pytest.raises(ReproError):
        FMPartitioner(triangle, cells=[0])


def test_fm_rejects_bad_tolerance(triangle):
    with pytest.raises(ReproError):
        FMPartitioner(triangle, balance_tolerance=1.5)


def test_fm_initial_partition_must_cover(two_cliques):
    partitioner = FMPartitioner(two_cliques, rng=0)
    with pytest.raises(ReproError):
        partitioner.run(initial={0: 0})


def test_fm_subset_partitioning(two_cliques):
    result = fm_bisect(two_cliques, cells=range(4), rng=3)
    assert set(result.sides) == set(range(4))


def test_fm_cut_matches_recount(small_planted):
    netlist, _ = small_planted
    cells = list(range(300))
    result = fm_bisect(netlist, cells=cells, rng=4)
    # Recount the cut over restricted nets.
    side0 = set(result.side_cells(0))
    recount = 0
    seen = set()
    for cell in cells:
        for net in netlist.nets_of_cell(cell):
            if net in seen:
                continue
            seen.add(net)
            members = [c for c in netlist.cells_of_net(net) if c in result.sides]
            if len(members) >= 2:
                inside = sum(1 for c in members if c in side0)
                if 0 < inside < len(members):
                    recount += 1
    assert recount == result.cut


def test_fm_sides_and_cut_agree_on_worsening_pass():
    """Regression: ``run`` must return the sides matching the reported cut.

    From a zero-cut start every move worsens the cut, yet a pass always
    commits at least one move; the buggy version returned the worsened
    sides of that pass alongside the earlier (better) cut.
    """
    builder = NetlistBuilder()
    cells = builder.add_cells(5)
    builder.add_net("n01", [cells[0], cells[1]])
    builder.add_net("n02", [cells[0], cells[2]])
    builder.add_net("n12", [cells[1], cells[2]])
    builder.add_net("n34", [cells[3], cells[4]])
    netlist = builder.build()

    initial = {0: 0, 1: 0, 2: 0, 3: 1, 4: 1}  # cut 0, locally optimal
    partitioner = FMPartitioner(netlist, balance_tolerance=0.1, rng=0)
    result = partitioner.run(initial=initial)
    recount = cut_size(netlist, result.side_cells(0))
    assert result.cut == recount
    assert result.cut == 0
    assert result.sides == initial


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_property_fm_sides_always_match_cut(seed):
    """result.cut always equals the cut recomputed from result.sides."""
    rng = random.Random(seed)
    builder = NetlistBuilder()
    num_cells = rng.randint(4, 24)
    cells = builder.add_cells(num_cells)
    for i in range(rng.randint(3, 40)):
        builder.add_net(f"n{i}", rng.sample(cells, rng.randint(2, min(5, num_cells))))
    netlist = builder.build()

    result = fm_bisect(netlist, rng=seed)
    assert result.cut == cut_size(netlist, result.side_cells(0))


def test_fm_improves_over_random_start():
    rng = random.Random(5)
    builder = NetlistBuilder()
    cells = builder.add_cells(60)
    # Two communities with sparse cross edges.
    for _ in range(180):
        a, b = rng.sample(cells[:30], 2)
        builder.add_net(None, [a, b])
    for _ in range(180):
        a, b = rng.sample(cells[30:], 2)
        builder.add_net(None, [a, b])
    for _ in range(6):
        builder.add_net(None, [rng.choice(cells[:30]), rng.choice(cells[30:])])
    netlist = builder.build()
    result = fm_bisect(netlist, rng=6)
    assert result.cut <= 10  # near the natural 6-net cut


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_property_fm_never_worsens_random_start(seed):
    rng = random.Random(seed)
    builder = NetlistBuilder()
    num_cells = rng.randint(6, 30)
    cells = builder.add_cells(num_cells)
    for i in range(rng.randint(4, 50)):
        builder.add_net(f"n{i}", rng.sample(cells, rng.randint(2, min(4, num_cells))))
    netlist = builder.build()

    partitioner = FMPartitioner(netlist, rng=seed)
    start = partitioner._random_balanced_start()
    start_cut = partitioner._cut(start)
    result = partitioner.run(initial=dict(start))
    assert result.cut <= start_cut


class _CountingAreas(dict):
    """Dict that counts ``values()`` calls (the O(n) scan in question)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.values_calls = 0

    def values(self):
        self.values_calls += 1
        return super().values()


def test_balance_check_does_not_rescan_areas():
    """Regression: ``_balance_ok`` recomputed ``max(self._areas.values())``
    on every candidate probe — O(n) per probe, quadratic per pass.  The max
    is hoisted to ``__init__``; after construction no balance probe may
    scan the areas again."""
    rng = random.Random(0)
    builder = NetlistBuilder()
    cells = builder.add_cells(120)
    for i in range(300):
        builder.add_net(f"n{i}", rng.sample(cells, rng.randint(2, 4)))
    netlist = builder.build()

    partitioner = FMPartitioner(netlist, rng=1)
    counting = _CountingAreas(partitioner._areas)
    partitioner._areas = counting
    result = partitioner.run()
    assert result.cut >= 0  # the run completed
    assert counting.values_calls == 0


def test_random_balanced_start_handles_large_crossing_cell():
    """Regression: the cell crossing the half-area mark always landed on
    side 0, overshooting by up to its full area; a large crossing cell
    could leave the start beyond the balance tolerance.  It now goes to
    whichever side leaves side 0 closer to half, bounding the start
    imbalance by ``max_area / 2`` (or the tolerance slack if larger)."""
    builder = NetlistBuilder()
    big = builder.add_cell("big", area=10.0)
    smalls = [builder.add_cell(f"s{i}") for i in range(6)]
    for i, cell in enumerate(smalls):
        builder.add_net(f"n{i}", [big, cell])
    netlist = builder.build()

    total = 16.0
    bound = max(0.1 * total, 10.0 / 2)
    for seed in range(40):
        partitioner = FMPartitioner(netlist, rng=seed)
        start = partitioner._random_balanced_start()
        assert set(start) == set(range(netlist.num_cells))
        assert set(start.values()) <= {0, 1}
        area0 = sum(
            netlist.cell_area(c) for c in range(netlist.num_cells) if start[c] == 0
        )
        assert abs(area0 - total / 2) <= bound, f"seed {seed}: area0={area0}"


# ---------------------------------------------------------------- bisection
def test_recursive_bisection_covers_all(small_planted):
    netlist, _ = small_planted
    cells = list(range(400))
    leaves = recursive_bisection(netlist, cells=cells, min_block=16, rng=1)
    flat = [c for leaf in leaves for c in leaf]
    assert sorted(flat) == cells
    assert all(len(leaf) <= 16 for leaf in leaves if len(leaves) > 1)


def test_bisection_ordering_is_permutation(small_planted):
    netlist, _ = small_planted
    cells = list(range(300))
    ordering = bisection_ordering(netlist, cells=cells, rng=2)
    assert sorted(ordering) == cells


def test_bisection_ordering_localizes_planted_block(small_planted):
    """The planted block occupies a contiguous-ish span of the ordering."""
    netlist, truth = small_planted
    block = truth[0]
    ordering = bisection_ordering(netlist, min_block=32, rng=3)
    positions = sorted(i for i, c in enumerate(ordering) if c in block)
    span = positions[-1] - positions[0] + 1
    assert span <= 3 * len(block)


def test_bisection_rent_estimate_agrees_with_ordering_estimator():
    """Both Rent estimators land in the same band on glue logic."""
    from repro.finder.candidate import scan_ordering
    from repro.finder.ordering import grow_linear_ordering
    from repro.generators.circuit_builder import CircuitBuilder
    from repro.generators.structures import build_random_glue

    circuit = CircuitBuilder()
    build_random_glue(circuit, 1200, rng=7)
    netlist = circuit.finish()

    p_bisect, coefficient = estimate_rent_exponent_bisection(
        netlist, min_block=24, rng=8
    )
    ordering = grow_linear_ordering(netlist, 10, 600)
    p_ordering = estimate_rent_exponent_from_prefixes(scan_ordering(netlist, ordering))
    assert 0.3 < p_bisect < 1.0
    assert abs(p_bisect - p_ordering) < 0.3
    assert coefficient > 0


def test_bisection_rent_needs_enough_nodes(triangle):
    with pytest.raises(ReproError):
        estimate_rent_exponent_bisection(triangle, min_block=16)


def test_phase2_works_on_bisection_ordering(small_planted):
    """The paper's Phase II extracts the planted GTL from an FM ordering."""
    from repro.finder import FinderConfig
    from repro.finder.candidate import extract_candidate

    netlist, truth = small_planted
    block = truth[0]
    ordering = bisection_ordering(netlist, min_block=32, rng=5)
    # Rotate the ordering so the block's span starts near the front, the
    # way a seed-based ordering would present it.
    first = min(i for i, c in enumerate(ordering) if c in block)
    rotated = ordering[first:] + ordering[:first]
    candidate = extract_candidate(
        netlist,
        rotated[: min(len(rotated), 3 * len(block))],
        FinderConfig(),
    )
    assert candidate is not None
    overlap = len(candidate.cells & block) / len(block)
    assert overlap > 0.8
