"""Tests of the observability layer (:mod:`repro.obs`).

The load-bearing invariants:

* disabled tracing is a no-op (shared null singletons, nothing collected);
* spans nest and parent correctly, including across the WorkerPool's
  process boundary (worker spans re-parented under the task span);
* the JSONL sink round-trips through :class:`RunReport`;
* enabling tracing changes neither detection reports nor fingerprints.
"""

from __future__ import annotations

import json
import logging
import os

import pytest

from repro.errors import ReproError
from repro.finder import FinderConfig, TangledLogicFinder, find_tangled_logic
from repro.generators.random_gtl import planted_gtl_graph
from repro.obs import RunReport, configure_logging, trace
from repro.obs.lint import check_source, run as lint_run
from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)
from repro.obs.trace import NULL_SPAN
from repro.service import ResultStore, WorkerPool, job_fingerprint

CFG = FinderConfig(num_seeds=6, seed=3)


@pytest.fixture(autouse=True)
def _reset_tracer():
    """Every test starts and ends with the global tracer disabled."""
    trace.disable()
    yield
    trace.disable()


@pytest.fixture(scope="module")
def small():
    netlist, truth = planted_gtl_graph(800, [60], seed=5)
    return netlist, truth


# ----------------------------------------------------------------------
# Core tracer
# ----------------------------------------------------------------------
def test_disabled_tracing_is_a_shared_noop():
    assert not trace.enabled()
    assert trace.span("anything", key=1) is NULL_SPAN
    assert trace.counter("c") is NULL_COUNTER
    assert trace.gauge("g") is NULL_GAUGE
    assert trace.histogram("h") is NULL_HISTOGRAM
    with trace.span("outer") as outer:
        assert outer is NULL_SPAN
        assert outer.set(a=1) is NULL_SPAN and outer.add("n") is NULL_SPAN
    NULL_COUNTER.add(5)
    NULL_GAUGE.set(3.0)
    NULL_HISTOGRAM.observe(0.1)
    assert trace.record("late", duration=1.0) is None
    assert trace.get_tracer().finished_spans() == []
    assert len(trace.get_tracer().metrics) == 0


def test_span_nesting_parentage_and_error_attr():
    trace.enable()
    with pytest.raises(ValueError):
        with trace.span("outer", design="d") as outer:
            with trace.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                inner.set(cells=7).add("steps", 2).add("steps")
            raise ValueError("boom")
    spans = {s["name"]: s for s in trace.get_tracer().finished_spans()}
    assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
    assert spans["outer"]["parent_id"] is None
    assert spans["inner"]["attrs"] == {"cells": 7, "steps": 3}
    assert spans["outer"]["attrs"]["error"] == "ValueError"
    assert spans["outer"]["duration"] >= spans["inner"]["duration"] >= 0.0
    assert spans["outer"]["pid"] == os.getpid()


def test_record_and_adopt_reparent_worker_roots():
    trace.enable()
    task_id = trace.record("pool.task", duration=1.5, jobs=3)
    worker = [
        {"name": "w.root", "span_id": "w1", "parent_id": "gone", "start": 0.0,
         "duration": 0.5, "pid": 1, "attrs": {}},
        {"name": "w.child", "span_id": "w2", "parent_id": "w1", "start": 0.0,
         "duration": 0.2, "pid": 1, "attrs": {}},
    ]
    trace.get_tracer().adopt(worker, parent_id=task_id)
    spans = {s["span_id"]: s for s in trace.get_tracer().finished_spans()}
    # The worker's root hangs under the task span; internal links survive.
    assert spans["w1"]["parent_id"] == task_id
    assert spans["w2"]["parent_id"] == "w1"


def test_capture_isolates_and_restores_tracer_state():
    trace.enable()
    tracer = trace.get_tracer()
    with trace.span("outer") as outer:
        with tracer.capture() as captured:
            with tracer.span("worker.span") as inner:
                assert inner.parent_id is None  # fresh context inside capture
            tracer.metrics.counter("worker.items").add(4)
        with trace.span("after") as after:
            assert after.parent_id == outer.span_id  # context restored
    assert [s["name"] for s in captured.spans] == ["worker.span"]
    assert captured.metrics["worker.items"]["value"] == 4
    names = [s["name"] for s in tracer.finished_spans()]
    assert "worker.span" not in names and "outer" in names
    assert len(tracer.metrics) == 0


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_metric_snapshot_merge_round_trip():
    a, b = MetricRegistry(), MetricRegistry()
    a.counter("n").add(3)
    a.gauge("depth").set(5.0)
    a.histogram("lat").observe(0.02)
    b.counter("n").add(4)
    b.histogram("lat").observe(2.5)
    b.merge(a.snapshot())
    assert b.counter("n").value == 7
    assert b.gauge("depth").value == 5.0
    lat = b.histogram("lat")
    assert lat.count == 2 and lat.min == 0.02 and lat.max == 2.5
    assert lat.mean == pytest.approx((0.02 + 2.5) / 2)


def test_gauge_merge_ignores_never_written_snapshots():
    g = Gauge()
    g.set(9.0)
    g.merge(Gauge().snapshot())  # zero updates: must not clobber
    assert g.value == 9.0
    written = Gauge()
    written.set(2.0)
    g.merge(written.snapshot())
    assert g.value == 2.0 and g.updates == 2


def test_metric_registry_rejects_kind_conflicts_and_bad_merges():
    reg = MetricRegistry()
    reg.counter("x")
    with pytest.raises(ReproError):
        reg.gauge("x")
    with pytest.raises(ReproError):
        reg.merge({"y": {"kind": "nope", "value": 1}})
    h = Histogram(bounds=(1.0, 2.0))
    with pytest.raises(ReproError):
        h.merge(Histogram().snapshot())


def test_counter_and_histogram_basics():
    c = Counter()
    c.add()
    c.add(9)
    assert c.value == 10
    h = Histogram()
    assert h.mean == 0.0
    h.observe(1e6)  # overflow bucket
    assert h.buckets[-1] == 1
    snap = h.snapshot()
    assert snap["max"] == 1e6 and snap["count"] == 1


# ----------------------------------------------------------------------
# RunReport + JSONL sink
# ----------------------------------------------------------------------
def test_jsonl_sink_round_trips_through_run_report(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    trace.enable(jsonl_path=path)
    with trace.span("run"):
        with trace.span("phase", k=1):
            pass
        with trace.span("phase"):
            pass
    trace.counter("items").add(3)
    memory = RunReport.from_tracer()
    trace.disable()

    for line in open(path):
        json.loads(line)  # every line is valid JSON
    replayed = RunReport.from_jsonl(path)
    assert len(replayed.spans) == len(memory.spans) == 3
    assert replayed.phase_totals().keys() == memory.phase_totals().keys()
    assert replayed.phase_totals()["phase"]["count"] == 2
    assert memory.counters() == {"items": 3}


def test_run_report_rejects_bad_trace_files(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"name": "ok", "span_id": "a", "duration": 1}\n{nope\n')
    with pytest.raises(ReproError, match="line 2"):
        RunReport.from_jsonl(str(bad))
    with pytest.raises(ReproError, match="cannot read"):
        RunReport.from_jsonl(str(tmp_path / "absent.jsonl"))


def test_run_report_tree_merges_names_and_attributes_self_time():
    spans = [
        {"name": "root", "span_id": "r", "parent_id": None, "duration": 1.0},
        {"name": "leaf", "span_id": "a", "parent_id": "r", "duration": 0.3},
        {"name": "leaf", "span_id": "b", "parent_id": "r", "duration": 0.2},
        # Orphan (parent not in the trace) becomes a root, not an error.
        {"name": "stray", "span_id": "c", "parent_id": "gone", "duration": 0.1},
    ]
    report = RunReport(spans, {"k": {"kind": "counter", "value": 2}})
    tree = {node["name"]: node for node in report.tree()}
    assert tree["root"]["self_s"] == pytest.approx(0.5)
    leaf = tree["root"]["children"][0]
    assert leaf["name"] == "leaf" and leaf["count"] == 2
    assert leaf["total_s"] == pytest.approx(0.5)
    assert tree["stray"]["total_s"] == pytest.approx(0.1)
    summary = report.summary()
    assert "root" in summary and "  leaf" in summary
    assert "k = 2" in summary
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["num_spans"] == 4 and payload["phases"]["leaf"]["count"] == 2


# ----------------------------------------------------------------------
# End-to-end instrumentation
# ----------------------------------------------------------------------
def test_tracing_changes_neither_reports_nor_fingerprints(small):
    netlist, _ = small
    plain = find_tangled_logic(netlist, CFG)
    plain_fp = job_fingerprint(netlist, CFG)
    trace.enable()
    traced = find_tangled_logic(netlist, CFG)
    traced_fp = job_fingerprint(netlist, CFG)
    report = RunReport.from_tracer()
    trace.disable()
    assert traced.gtls == plain.gtls
    assert traced.rent_exponent == plain.rent_exponent
    assert traced_fp == plain_fp
    counters = report.counters()
    assert counters["finder.seeds"] == CFG.num_seeds
    assert counters["finder.heap_pushes"] > 0
    phases = report.phase_totals()
    for name in ("finder.run", "finder.seed", "finder.phase1", "finder.reduce"):
        assert name in phases


def test_pool_spans_reparent_across_process_boundary(small):
    netlist, _ = small
    serial = find_tangled_logic(netlist, CFG)
    trace.enable()
    with WorkerPool(2) as pool:
        traced = TangledLogicFinder(netlist, CFG).run(pool=pool)
    report = RunReport.from_tracer()
    trace.disable()
    assert traced.gtls == serial.gtls

    spans = report.spans
    by_id = {s["span_id"]: s for s in spans}
    names = {s["name"] for s in spans}
    assert {"pool.run", "pool.task", "pool.batch", "finder.seed"} <= names
    # Every parent resolves: adoption left no dangling edges.
    for span in spans:
        assert span["parent_id"] is None or span["parent_id"] in by_id

    def ancestors(span):
        while span["parent_id"] is not None:
            span = by_id[span["parent_id"]]
            yield span["name"]

    parent_pid = os.getpid()
    worker_seeds = [
        s for s in spans if s["name"] == "finder.seed" and s["pid"] != parent_pid
    ]
    assert worker_seeds, "no finder.seed spans came from worker processes"
    for seed_span in worker_seeds:
        assert "pool.task" in list(ancestors(seed_span))
    # Worker counters merged into the parent registry.
    counters = report.counters()
    assert counters["finder.seeds"] == CFG.num_seeds
    assert counters["pool.tasks"] >= 1
    assert counters["pool.context_shipments"] >= 1
    assert counters["pool.context_bytes"] > 0
    # Task spans carry queue-wait/execute timings.
    task = next(s for s in spans if s["name"] == "pool.task")
    assert task["attrs"]["queue_wait_s"] >= 0.0
    assert task["attrs"]["execute_s"] >= 0.0


def test_store_emits_hit_miss_put_telemetry(tmp_path, small):
    netlist, _ = small
    report = find_tangled_logic(netlist, CFG)
    trace.enable()
    with ResultStore(str(tmp_path)) as store:
        assert store.get("absent") is None
        store.put("fp", report)
        assert store.get("fp") == report
    run_report = RunReport.from_tracer()
    trace.disable()
    counters = run_report.counters()
    assert counters == {"store.misses": 1, "store.puts": 1, "store.hits": 1}
    get_hist = run_report.metrics["store.get_s"]
    assert get_hist["kind"] == "histogram" and get_hist["count"] == 2
    assert run_report.metrics["store.put_s"]["count"] == 1
    assert "store.get_s" in run_report.summary()


def test_flow_stage_spans_carry_cache_attrs(tmp_path, small):
    from repro.flow import DetectStage, Flow, PartitionStage

    netlist, _ = small
    flow = Flow([DetectStage(CFG), PartitionStage()])

    def stage_spans():
        return {
            s["name"]: s
            for s in trace.get_tracer().finished_spans()
            if s["name"].startswith(("stage.", "flow."))
        }

    with ResultStore(str(tmp_path)) as store:
        trace.enable()
        flow.run(netlist, store=store)
        cold = stage_spans()
        trace.enable()  # fresh trace for the warm run
        flow.run(netlist, store=store)
        warm = stage_spans()
        trace.disable()

    assert set(cold) == {"flow.run", "stage.detect", "stage.partition"}
    for name in ("stage.detect", "stage.partition"):
        assert cold[name]["attrs"]["cache"] == "run"
        assert warm[name]["attrs"]["cache"] == "hit"
        assert len(cold[name]["attrs"]["fingerprint"]) == 12
        assert cold[name]["parent_id"] == cold["flow.run"]["span_id"]
        # Same stage, same inputs: the fingerprint is trace-invariant.
        assert warm[name]["attrs"]["fingerprint"] == cold[name]["attrs"]["fingerprint"]


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
def _write_flow_manifest(tmp_path, netlist):
    from repro.io.hgr import write_hgr

    write_hgr(netlist, str(tmp_path / "design.hgr"))
    manifest = tmp_path / "flow.json"
    manifest.write_text(json.dumps({
        "designs": ["design.hgr"],
        "stages": [
            {"stage": "detect", "num_seeds": 6, "seed": 3},
            {"stage": "partition"},
        ],
    }))
    return str(manifest)


def test_cli_flow_run_trace_and_profile(tmp_path, small, capsys):
    from repro.cli import main

    netlist, _ = small
    manifest = _write_flow_manifest(tmp_path, netlist)
    out_path = str(tmp_path / "out.jsonl")
    code = main([
        "flow", "run", manifest, "--no-cache", "--quiet",
        "--trace", out_path, "--profile",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert f"to {out_path}" in out
    assert "span" in out and "cli.flow-run" in out and "stage.detect" in out
    replayed = RunReport.from_jsonl(out_path)
    names = {s["name"] for s in replayed.spans}
    assert {"cli.flow-run", "flow.run", "stage.detect", "stage.partition"} <= names
    # The CLI session tore the global tracer back down.
    assert not trace.enabled()


def test_cli_batch_trace_covers_pool_tasks(tmp_path, small, capsys):
    from repro.cli import main
    from repro.io.hgr import write_hgr

    netlist, _ = small
    write_hgr(netlist, str(tmp_path / "d.hgr"))
    batch = tmp_path / "batch.json"
    batch.write_text(json.dumps({
        "defaults": {"num_seeds": 6, "seed": 1},
        "jobs": [{"design": "d.hgr", "label": "j0"}],
    }))
    out_path = str(tmp_path / "batch.jsonl")
    code = main([
        "batch", str(batch), "--no-cache", "--quiet",
        "--workers", "2", "--trace", out_path,
    ])
    assert code == 0
    assert f"to {out_path}" in capsys.readouterr().out
    names = {s["name"] for s in RunReport.from_jsonl(out_path).spans}
    assert {"cli.batch", "service.job", "pool.task", "finder.seed"} <= names


def test_cli_rejects_unknown_log_level(tmp_path, capsys):
    from repro.cli import main

    assert main(["--log-level", "noisy", "stats", str(tmp_path / "x.hgr")]) == 2
    assert "unknown log level" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Logging configuration
# ----------------------------------------------------------------------
def test_configure_logging_levels_env_and_idempotence(monkeypatch):
    logger = configure_logging("debug")
    assert logger.level == logging.DEBUG
    handlers_before = list(logger.handlers)
    configure_logging("info")
    assert logger.level == logging.INFO
    assert logger.handlers == handlers_before  # never stacks handlers

    monkeypatch.setenv("REPRO_LOG_LEVEL", "ERROR")
    assert configure_logging().level == logging.ERROR
    with pytest.raises(ReproError):
        configure_logging("nope")


# ----------------------------------------------------------------------
# Telemetry-hygiene lint
# ----------------------------------------------------------------------
def test_lint_flags_bare_timing_and_print():
    source = (
        "import time\n"
        "def f():\n"
        "    t = time.perf_counter()\n"
        "    print(t)\n"
        "if __name__ == '__main__':\n"
        "    print('fine here')\n"
    )
    violations = check_source(source, "repro/pkg/mod.py")
    assert len(violations) == 2
    assert "mod.py:3" in violations[0] and "time.perf_counter" in violations[0]
    assert "mod.py:4" in violations[1] and "print" in violations[1]
    assert check_source("x = (", "bad.py")[0].startswith("bad.py:")


def test_lint_passes_on_the_repo_source_tree():
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    assert lint_run(src) == []


# ----------------------------------------------------------------------
# Timer rides the same clock
# ----------------------------------------------------------------------
def test_timer_uses_the_obs_clock(monkeypatch):
    from repro.obs import trace as trace_module
    from repro.utils.timer import Timer

    ticks = iter([10.0, 13.5])
    monkeypatch.setattr(trace_module, "clock", lambda: next(ticks))
    with Timer() as timer:
        pass
    assert timer.elapsed == 3.5
    assert timer.minutes == pytest.approx(3.5 / 60)
