"""Parity of the array FM partition kernel against the scalar reference.

The contract (see :mod:`repro.netlist.backend`): both backends run the
exact same FM — identical move sequences, so identical sides, cuts and
pass counts bit for bit — on any subset, tolerance and seed; recursive
bisection produces the same leaves in the same order; and
``PartitionStage`` fingerprints are byte-identical across backends so
caches are shared.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.flow.flow import Flow
from repro.flow.stages import PartitionConfig, PartitionStage
from repro.netlist.backend import forced_backend
from repro.netlist.builder import NetlistBuilder
from repro.partition import (
    ArrayFMPartitioner,
    FMPartitioner,
    SubsetCSR,
    bisection_ordering,
    estimate_rent_exponent_bisection,
    fm_bisect,
    make_partitioner,
    recursive_bisection,
)
from repro.service.store import ResultStore


def _random_netlist(rng, max_cells=36):
    """Random hypergraph with mixed cell areas (exercises balance floats)."""
    builder = NetlistBuilder()
    num_cells = rng.randint(4, max_cells)
    cells = [
        builder.add_cell(f"c{i}", area=rng.choice([0.5, 1.0, 2.0, 7.5]))
        for i in range(num_cells)
    ]
    for i in range(rng.randint(3, 3 * num_cells)):
        builder.add_net(f"n{i}", rng.sample(cells, rng.randint(2, min(6, num_cells))))
    return builder.build()


def _assert_identical(scalar, array):
    assert scalar.sides == array.sides
    assert scalar.cut == array.cut
    assert scalar.passes == array.passes


# ---------------------------------------------------------------- dispatch
def test_make_partitioner_dispatches_on_backend(two_cliques):
    assert isinstance(make_partitioner(two_cliques, backend="python"), FMPartitioner)
    assert isinstance(
        make_partitioner(two_cliques, backend="numpy"), ArrayFMPartitioner
    )
    with forced_backend("python"):
        assert isinstance(make_partitioner(two_cliques), FMPartitioner)
    with forced_backend("numpy"):
        assert isinstance(make_partitioner(two_cliques), ArrayFMPartitioner)


def test_array_partitioner_error_parity(triangle, two_cliques):
    with pytest.raises(ReproError):
        ArrayFMPartitioner(triangle, balance_tolerance=1.5)
    with pytest.raises(ReproError):
        ArrayFMPartitioner(triangle, cells=[0])
    with pytest.raises(ReproError):
        ArrayFMPartitioner(None)  # neither netlist nor subset
    partitioner = ArrayFMPartitioner(two_cliques, rng=0)
    with pytest.raises(ReproError):
        partitioner.run(initial={0: 0})


def test_array_partitioner_empty_initial_means_random_start(two_cliques):
    """Parity: the reference treats ``initial={}`` by truthiness (random
    start), not as an explicit empty cover."""
    scalar = FMPartitioner(two_cliques, rng=4).run(initial={})
    array = ArrayFMPartitioner(two_cliques, rng=4).run(initial={})
    _assert_identical(scalar, array)


def test_array_partitioner_passes_extra_initial_keys_through(two_cliques):
    """The reference passes unknown initial keys through untouched."""
    initial = {c: c % 2 for c in range(8)}
    initial[99] = 1  # not a cell of the subset
    scalar = FMPartitioner(two_cliques, cells=range(8), rng=0).run(initial=dict(initial))
    array = ArrayFMPartitioner(two_cliques, cells=range(8), rng=0).run(
        initial=dict(initial)
    )
    _assert_identical(scalar, array)
    assert array.sides[99] == 1


# ---------------------------------------------------------------- fm parity
@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_property_fm_bit_identical(seed):
    rng = random.Random(seed)
    netlist = _random_netlist(rng)
    tolerance = rng.choice([0.0, 0.01, 0.1, 0.3])
    cells = None
    if rng.random() < 0.5:
        cells = rng.sample(range(netlist.num_cells), rng.randint(2, netlist.num_cells))
    scalar = fm_bisect(
        netlist, cells=cells, balance_tolerance=tolerance, rng=seed, backend="python"
    )
    array = fm_bisect(
        netlist, cells=cells, balance_tolerance=tolerance, rng=seed, backend="numpy"
    )
    _assert_identical(scalar, array)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_property_fm_bit_identical_from_explicit_start(seed):
    rng = random.Random(seed)
    netlist = _random_netlist(rng)
    initial = {c: rng.randint(0, 1) for c in range(netlist.num_cells)}
    scalar = FMPartitioner(netlist, rng=seed).run(initial=dict(initial))
    array = ArrayFMPartitioner(netlist, rng=seed).run(initial=dict(initial))
    _assert_identical(scalar, array)


def test_fm_parity_on_planted_design(small_planted):
    netlist, _ = small_planted
    scalar = fm_bisect(netlist, rng=3, backend="python")
    array = fm_bisect(netlist, rng=3, backend="numpy")
    _assert_identical(scalar, array)


# ---------------------------------------------------------------- subsets
def test_subset_csr_restrict_matches_fresh_restriction(small_planted):
    """Restricting a SubsetCSR equals restricting the netlist from scratch —
    the invariant that lets recursive bisection reuse one structure down
    the tree."""
    netlist, _ = small_planted
    rng = random.Random(9)
    parent_cells = sorted(rng.sample(range(netlist.num_cells), 600))
    parent = SubsetCSR.from_netlist(netlist, parent_cells)
    child_cells = sorted(rng.sample(parent_cells, 250))
    derived = parent.restrict(parent.member_mask(child_cells))
    fresh = SubsetCSR.from_netlist(netlist, child_cells)
    assert np.array_equal(derived.cells, fresh.cells)
    assert np.array_equal(derived.areas, fresh.areas)
    # Net numbering is compaction-order dependent but both restrict in
    # ascending net order, so the CSRs must match exactly.
    assert np.array_equal(derived.net_ptr, fresh.net_ptr)
    assert np.array_equal(derived.net_cells, fresh.net_cells)


def test_subset_csr_member_mask_rejects_non_members(small_planted):
    netlist, _ = small_planted
    subset = SubsetCSR.from_netlist(netlist, [0, 2, 4])
    assert list(subset.member_mask([0, 4])) == [True, False, True]
    with pytest.raises(ReproError, match="not in subset"):
        subset.member_mask([1])
    with pytest.raises(ReproError, match="not in subset"):
        subset.member_mask([netlist.num_cells + 7])


def test_subset_csr_drops_single_pin_restrictions(mixed_netlist):
    subset = SubsetCSR.from_netlist(mixed_netlist, [0, 3])
    # Only net "n2" (a, pad0) keeps two pins inside {a, pad0}.
    assert subset.num_nets == 1
    assert subset.num_cells == 2


# ---------------------------------------------------------------- bisection
@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_property_recursive_bisection_leaf_parity(seed):
    rng = random.Random(seed)
    netlist = _random_netlist(rng, max_cells=90)
    min_block = rng.choice([4, 6, 10])
    scalar = recursive_bisection(netlist, min_block=min_block, rng=seed, backend="python")
    array = recursive_bisection(netlist, min_block=min_block, rng=seed, backend="numpy")
    assert scalar == array


def test_bisection_ordering_parity(small_planted):
    netlist, _ = small_planted
    cells = list(range(500))
    scalar = bisection_ordering(netlist, cells=cells, min_block=16, rng=2, backend="python")
    array = bisection_ordering(netlist, cells=cells, min_block=16, rng=2, backend="numpy")
    assert scalar == array


def test_rent_estimate_parity(small_planted):
    netlist, _ = small_planted
    scalar = estimate_rent_exponent_bisection(
        netlist, cells=range(600), min_block=24, rng=5, backend="python"
    )
    array = estimate_rent_exponent_bisection(
        netlist, cells=range(600), min_block=24, rng=5, backend="numpy"
    )
    # Identical (|C|, T(C)) samples make the fit bit-identical, not merely
    # close.
    assert scalar == array


# ---------------------------------------------------------------- flow
def test_partition_stage_cache_is_shared_across_backends(
    small_planted, tmp_path, monkeypatch
):
    netlist, _ = small_planted
    config = PartitionConfig(seed=7)

    monkeypatch.setenv("REPRO_SCALAR_BACKEND", "0")
    with ResultStore(str(tmp_path)) as store:
        computed = Flow([PartitionStage(config)], name="part").run(netlist, store=store)
    assert not computed["partition"].cached
    assert computed["partition"].metadata["kernel_backend"] == "numpy"

    # Same design + config under the scalar backend: identical fingerprint,
    # served from the array-computed cache row, identical artifact.
    monkeypatch.setenv("REPRO_SCALAR_BACKEND", "1")
    with ResultStore(str(tmp_path)) as store:
        cached = Flow([PartitionStage(config)], name="part").run(netlist, store=store)
    assert cached["partition"].cached
    assert cached["partition"].fingerprint == computed["partition"].fingerprint
    assert cached["partition"].metadata["kernel_backend"] == "python"
    first = computed.artifact("partition")
    second = cached.artifact("partition")
    assert first.sides == second.sides
    assert (first.cut, first.passes) == (second.cut, second.passes)

    # And a scalar-computed run produces the same fingerprint and artifact
    # from scratch.
    with ResultStore(str(tmp_path / "fresh")) as store:
        recomputed = Flow([PartitionStage(config)], name="part").run(
            netlist, store=store
        )
    assert not recomputed["partition"].cached
    assert recomputed["partition"].fingerprint == computed["partition"].fingerprint
    third = recomputed.artifact("partition")
    assert third.sides == first.sides and third.cut == first.cut
