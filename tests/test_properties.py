"""Cross-cutting property-based tests on core invariants."""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.finder.candidate import CandidateGTL
from repro.finder.prune import prune_overlapping
from repro.finder.refine import genetic_family
from repro.finder.result import FinderReport, GTL
from repro.finder.config import FinderConfig
from repro.netlist.builder import NetlistBuilder
from repro.netlist.ops import GroupStats, cut_size, group_stats
from repro.placement.region import Die
from repro.placement.spreading import spread_cells


# ---------------------------------------------------------------- prune
def _candidate(cells, score, seed=0):
    return CandidateGTL(
        cells=frozenset(cells),
        score=score,
        stats=GroupStats(len(cells), 1, len(cells), 0, 1.0),
        rent_exponent=0.6,
        seed=seed,
    )


@given(
    st.lists(
        st.tuples(
            st.frozensets(st.integers(0, 30), min_size=1, max_size=8),
            st.floats(0.01, 2.0, allow_nan=False),
        ),
        max_size=20,
    )
)
def test_property_prune_output_disjoint_and_greedy(items):
    candidates = [_candidate(cells, score, seed=i) for i, (cells, score) in enumerate(items)]
    kept = prune_overlapping(candidates)
    # Disjointness.
    seen = set()
    for candidate in kept:
        assert seen.isdisjoint(candidate.cells)
        seen.update(candidate.cells)
    # Scores ascend.
    scores = [k.score for k in kept]
    assert scores == sorted(scores)
    # Maximality: every rejected candidate overlaps something kept that
    # scores no worse.
    kept_sets = [(k.score, k.cells) for k in kept]
    for candidate in candidates:
        if any(candidate.cells == cells for _, cells in kept_sets):
            continue
        assert any(
            score <= candidate.score and (cells & candidate.cells)
            for score, cells in kept_sets
        )


@given(
    st.lists(
        st.frozensets(st.integers(0, 15), min_size=1, max_size=6),
        min_size=1,
        max_size=5,
    )
)
def test_property_genetic_family_closure(sets):
    family = genetic_family(list(sets))
    universe = frozenset().union(*sets)
    for member in family:
        assert member  # non-empty
        assert member <= universe  # no invented cells
    assert len(set(family)) == len(family)  # no duplicates
    for original in sets:
        assert original in family


# ---------------------------------------------------------------- cut
@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_property_cut_complement_symmetry(seed):
    """T(C) == T(V - C) for any group: the cut is a boundary property."""
    rng = random.Random(seed)
    builder = NetlistBuilder()
    num_cells = rng.randint(4, 24)
    cells = builder.add_cells(num_cells)
    for i in range(rng.randint(3, 40)):
        builder.add_net(f"n{i}", rng.sample(cells, rng.randint(2, min(5, num_cells))))
    netlist = builder.build()
    group = set(rng.sample(cells, rng.randint(1, num_cells - 1)))
    complement = set(cells) - group
    assert cut_size(netlist, group) == cut_size(netlist, complement)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_property_cut_subadditive_under_union(seed):
    """T(A u B) <= T(A) + T(B) for disjoint groups."""
    rng = random.Random(seed)
    builder = NetlistBuilder()
    num_cells = rng.randint(6, 24)
    cells = builder.add_cells(num_cells)
    for i in range(rng.randint(3, 40)):
        builder.add_net(f"n{i}", rng.sample(cells, rng.randint(2, min(4, num_cells))))
    netlist = builder.build()
    shuffled = list(cells)
    rng.shuffle(shuffled)
    k = rng.randint(1, num_cells - 2)
    j = rng.randint(k + 1, num_cells - 1)
    group_a, group_b = set(shuffled[:k]), set(shuffled[k:j])
    assert cut_size(netlist, group_a | group_b) <= cut_size(
        netlist, group_a
    ) + cut_size(netlist, group_b)


# ---------------------------------------------------------------- spreading
@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_property_spreading_preserves_axis_order_weakly(seed):
    """Spreading is a monotone transform: extreme cells stay extreme."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(8, 60))
    x = rng.uniform(0, 100, n)
    y = rng.uniform(0, 100, n)
    die = Die(100, 100)
    sx, sy = spread_cells(x, y, np.ones(n), die, leaf_cells=1)
    assert np.all((0 <= sx) & (sx <= 100))
    assert np.all((0 <= sy) & (sy <= 100))
    # The leftmost/rightmost halves keep their side relationships on average.
    left = x <= np.median(x)
    assert sx[left].mean() <= sx[~left].mean() + 1e-9


# ---------------------------------------------------------------- results
def test_finder_report_summary_empty():
    report = FinderReport(
        gtls=(),
        config=FinderConfig(),
        rent_exponent=0.6,
        num_orderings=4,
        num_candidates=0,
        runtime_seconds=0.1,
    )
    assert "no GTLs found" in report.summary()
    assert report.num_gtls == 0
    assert report.top(3) == ()


def test_finder_report_summary_rows():
    gtl = GTL(
        cells=frozenset({1, 2, 3}),
        size=3,
        cut=2,
        ngtl_score=0.5,
        gtl_sd_score=0.25,
        score=0.25,
        seed=7,
        rent_exponent=0.6,
    )
    report = FinderReport(
        gtls=(gtl,),
        config=FinderConfig(),
        rent_exponent=0.6,
        num_orderings=4,
        num_candidates=1,
        runtime_seconds=0.5,
    )
    text = report.summary()
    assert "p=0.600" in text
    assert "0.25" in text
    assert 2 in gtl  # __contains__
