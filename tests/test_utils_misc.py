"""Tests for rng helpers, union-find, timer and table formatting."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import ensure_rng, sample_distinct, spawn_seeds
from repro.utils.tables import format_table
from repro.utils.timer import Timer
from repro.utils.unionfind import UnionFind


# ---------------------------------------------------------------- rng
def test_ensure_rng_none_returns_random():
    assert isinstance(ensure_rng(None), random.Random)


def test_ensure_rng_int_is_deterministic():
    assert ensure_rng(42).random() == ensure_rng(42).random()


def test_ensure_rng_passthrough():
    generator = random.Random(1)
    assert ensure_rng(generator) is generator


def test_ensure_rng_rejects_bad_types():
    with pytest.raises(TypeError):
        ensure_rng("seed")
    with pytest.raises(TypeError):
        ensure_rng(True)


def test_sample_distinct_caps_at_population():
    assert sorted(sample_distinct([1, 2, 3], 10, rng=0)) == [1, 2, 3]


def test_sample_distinct_empty():
    assert sample_distinct([], 3) == []
    assert sample_distinct([1, 2], 0) == []


def test_sample_distinct_no_duplicates():
    result = sample_distinct(list(range(100)), 50, rng=3)
    assert len(result) == len(set(result)) == 50


def test_spawn_seeds_deterministic():
    assert spawn_seeds(5, 4) == spawn_seeds(5, 4)
    assert len(spawn_seeds(None, 3)) == 3


# ---------------------------------------------------------------- union-find
def test_unionfind_basic():
    uf = UnionFind([1, 2, 3])
    assert not uf.connected(1, 2)
    assert uf.union(1, 2)
    assert uf.connected(1, 2)
    assert not uf.union(1, 2)
    assert uf.component_count() == 2


def test_unionfind_add_idempotent():
    uf = UnionFind()
    uf.add("a")
    uf.add("a")
    assert uf.component_count() == 1


def test_unionfind_transitive():
    uf = UnionFind(range(4))
    uf.union(0, 1)
    uf.union(2, 3)
    uf.union(1, 2)
    assert uf.connected(0, 3)
    assert uf.component_count() == 1


@given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=100))
def test_unionfind_matches_naive(pairs):
    """Union-find connectivity agrees with a naive set-merging model."""
    uf = UnionFind(range(31))
    naive = [{i} for i in range(31)]

    def find_naive(x):
        for group in naive:
            if x in group:
                return group
        raise AssertionError

    for a, b in pairs:
        uf.union(a, b)
        ga, gb = find_naive(a), find_naive(b)
        if ga is not gb:
            ga.update(gb)
            naive.remove(gb)
    for a, b in pairs:
        assert uf.connected(a, b)
    assert uf.component_count() == len(naive)


# ---------------------------------------------------------------- timer
def test_timer_measures_elapsed():
    with Timer() as timer:
        sum(range(1000))
    assert timer.elapsed >= 0.0
    assert timer.minutes == pytest.approx(timer.elapsed / 60.0)


# ---------------------------------------------------------------- tables
def test_format_table_alignment():
    text = format_table(["a", "bb"], [[1, 22], [333, 4]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    assert "22" in lines[2]


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a"], [[1, 2]])


def test_format_table_float_rendering():
    text = format_table(["x"], [[0.123456], [1234.5], [0.0]])
    assert "0.123" in text
    assert "0" in text


def test_format_table_empty_rows():
    text = format_table(["h1", "h2"], [])
    assert "h1" in text
