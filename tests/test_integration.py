"""End-to-end integration tests crossing all subsystems."""

import numpy as np
import pytest

from repro import FinderConfig, find_tangled_logic
from repro.analysis.overlap import match_to_ground_truth
from repro.apps import place_with_soft_blocks
from repro.generators import (
    IndustrialSpec,
    default_bigblue1_like,
    generate_industrial,
    generate_ispd_like,
)
from repro.io.bookshelf import read_bookshelf, write_bookshelf
from repro.io.hgr import read_hgr, write_hgr
from repro.metrics import ScoreContext
from repro.netlist.ops import group_stats
from repro.placement import inflate_cells, place
from repro.routing import build_congestion_map, congestion_stats


@pytest.fixture(scope="module")
def industrial():
    spec = IndustrialSpec(
        glue_gates=4000, rom_blocks=((5, 32), (5, 24)), num_pads=64
    )
    return generate_industrial(spec, seed=21)


@pytest.fixture(scope="module")
def industrial_report(industrial):
    netlist, _ = industrial
    return find_tangled_logic(netlist, FinderConfig(num_seeds=48, seed=22))


def test_full_pipeline_roundtrip_through_bookshelf(tmp_path, industrial):
    """generate -> write Bookshelf -> read -> find: blocks still found."""
    netlist, truth = industrial
    aux = write_bookshelf(netlist, str(tmp_path), "ind")
    loaded, _ = read_bookshelf(aux)
    report = find_tangled_logic(loaded, FinderConfig(num_seeds=48, seed=22))
    # Map ground truth through names (indices may shift).
    name_truth = [
        frozenset(loaded.cell_index(netlist.cell_name(c)) for c in block)
        for block in truth
    ]
    matches = match_to_ground_truth(name_truth, report.gtls)
    assert sum(1 for m in matches if m.detected) >= 1


def test_full_pipeline_roundtrip_through_hgr(tmp_path, industrial):
    netlist, truth = industrial
    path = str(tmp_path / "ind.hgr")
    write_hgr(netlist, path)
    loaded = read_hgr(path)
    # hgr keeps cell order, so indices line up directly.
    report = find_tangled_logic(loaded, FinderConfig(num_seeds=48, seed=22))
    matches = match_to_ground_truth(truth, report.gtls)
    assert sum(1 for m in matches if m.detected) >= 1


def test_found_gtls_score_consistently(industrial, industrial_report):
    """Reported scores match recomputation from scratch."""
    netlist, _ = industrial
    report = industrial_report
    for gtl in report.gtls:
        stats = group_stats(netlist, gtl.cells)
        assert stats.size == gtl.size
        assert stats.cut == gtl.cut
        context = ScoreContext.for_netlist(
            netlist, gtl.rent_exponent, metric="ngtl_s"
        )
        assert context.score(stats) == pytest.approx(gtl.ngtl_score)


def test_congestion_relief_pipeline(industrial, industrial_report):
    """find -> place -> congest -> inflate -> re-place -> compare."""
    netlist, _ = industrial
    report = industrial_report
    gtl_cells = set()
    for gtl in report.gtls:
        gtl_cells.update(gtl.cells)
    assert gtl_cells, "pipeline needs at least one GTL"

    placement = place(netlist, utilization=0.5)
    before_map = build_congestion_map(
        placement, grid=(16, 16), target_average_occupancy=0.32
    )
    before = congestion_stats(before_map)

    inflated = inflate_cells(netlist, gtl_cells, 4.0)
    re_placed = place(inflated, die=placement.die)
    after = congestion_stats(
        build_congestion_map(re_placed, grid=(16, 16), capacity=before_map.capacity)
    )
    assert after.max_occupancy <= before.max_occupancy * 1.15


def test_soft_block_pipeline(industrial, industrial_report):
    """Soft blocks keep a found GTL coherent under placement."""
    netlist, _ = industrial
    report = industrial_report
    block = sorted(report.gtls[0].cells)
    constrained = place_with_soft_blocks(netlist, [block], utilization=0.5)
    xs, ys = constrained.x[block], constrained.y[block]
    dispersion = float(np.hypot(xs - xs.mean(), ys - ys.mean()).mean())
    die_scale = (constrained.die.width + constrained.die.height) / 2
    assert dispersion < 0.3 * die_scale


def test_ispd_like_pipeline_finds_planted_structures():
    netlist, truth = generate_ispd_like(default_bigblue1_like(0.15), seed=33)
    report = find_tangled_logic(netlist, FinderConfig(num_seeds=48, seed=34))
    matches = match_to_ground_truth(list(truth.values()), report.gtls)
    # The ROMs (strongest structures) must always be found.
    rom_blocks = [
        block for name, block in truth.items() if "_rom" in name
    ]
    rom_matches = match_to_ground_truth(rom_blocks, report.gtls)
    assert all(m.detected for m in rom_matches)
