"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main
from repro.generators.random_gtl import planted_gtl_graph
from repro.io.hgr import write_hgr


@pytest.fixture
def planted_hgr(tmp_path):
    netlist, truth = planted_gtl_graph(1200, [80], seed=1)
    path = str(tmp_path / "g.hgr")
    write_hgr(netlist, path)
    return path, truth


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_find_gtl_on_hgr(planted_hgr, capsys):
    path, truth = planted_hgr
    code = main(["find-gtl", path, "--seeds", "12", "--seed", "3"])
    assert code == 0
    output = capsys.readouterr().out
    assert "GTL" in output
    assert str(len(truth[0])) in output


def test_find_gtl_writes_output(planted_hgr, tmp_path, capsys):
    path, _ = planted_hgr
    out = str(tmp_path / "gtls.txt")
    code = main(["find-gtl", path, "--seeds", "12", "--seed", "3", "--out", out])
    assert code == 0
    assert os.path.exists(out)
    assert "GTL 1" in open(out).read()


def test_find_gtl_on_edgelist(tmp_path, capsys):
    edges = tmp_path / "g.edges"
    lines = [f"a{i} a{i + 1}" for i in range(40)]
    edges.write_text("\n".join(lines))
    code = main(["find-gtl", str(edges), "--seeds", "4", "--seed", "1"])
    assert code == 0


def test_generate_planted(tmp_path, capsys):
    out = str(tmp_path / "bench")
    code = main(
        ["generate", "planted", "--cells", "500", "--gtl-sizes", "40",
         "--seed", "2", "--out", out]
    )
    assert code == 0
    assert os.path.exists(os.path.join(out, "planted.aux"))


def test_generate_ispd(tmp_path, capsys):
    out = str(tmp_path / "bench")
    code = main(["generate", "ispd", "--scale", "0.05", "--seed", "2", "--out", out])
    assert code == 0
    assert os.path.exists(os.path.join(out, "ispd.aux"))


def test_generate_then_find(tmp_path, capsys):
    out = str(tmp_path / "bench")
    assert main(["generate", "planted", "--cells", "800", "--gtl-sizes", "60",
                 "--seed", "4", "--out", out]) == 0
    aux = os.path.join(out, "planted.aux")
    assert main(["find-gtl", aux, "--seeds", "8", "--seed", "5"]) == 0
    output = capsys.readouterr().out
    assert "GTL" in output


def test_experiment_fig2_with_csv(tmp_path, capsys, monkeypatch):
    # fig2 has fixed default sizes; shrink via monkeypatching defaults is
    # overkill — run the smallest harness through the CLI instead.
    import repro.experiments as experiments

    original = experiments.run_fig2

    def tiny_fig2(**kwargs):
        return original(num_cells=2000, gtl_size=150, seed=1)

    monkeypatch.setattr(experiments, "run_fig2", tiny_fig2)
    csv_path = str(tmp_path / "fig2.csv")
    code = main(["experiment", "fig2", "--csv", csv_path])
    assert code == 0
    assert os.path.exists(csv_path)


def test_cli_reports_repro_errors(tmp_path, capsys):
    bad = tmp_path / "bad.hgr"
    bad.write_text("bogus header\n")
    code = main(["find-gtl", str(bad)])
    assert code == 2
    assert "error" in capsys.readouterr().err
