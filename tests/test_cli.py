"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main
from repro.generators.random_gtl import planted_gtl_graph
from repro.io.hgr import write_hgr


@pytest.fixture
def planted_hgr(tmp_path):
    netlist, truth = planted_gtl_graph(1200, [80], seed=1)
    path = str(tmp_path / "g.hgr")
    write_hgr(netlist, path)
    return path, truth


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_find_gtl_on_hgr(planted_hgr, capsys):
    path, truth = planted_hgr
    code = main(["find-gtl", path, "--seeds", "12", "--seed", "3"])
    assert code == 0
    output = capsys.readouterr().out
    assert "GTL" in output
    assert str(len(truth[0])) in output


def test_find_gtl_writes_output(planted_hgr, tmp_path, capsys):
    path, _ = planted_hgr
    out = str(tmp_path / "gtls.txt")
    code = main(["find-gtl", path, "--seeds", "12", "--seed", "3", "--out", out])
    assert code == 0
    assert os.path.exists(out)
    assert "GTL 1" in open(out).read()


def test_find_gtl_on_edgelist(tmp_path, capsys):
    edges = tmp_path / "g.edges"
    lines = [f"a{i} a{i + 1}" for i in range(40)]
    edges.write_text("\n".join(lines))
    code = main(["find-gtl", str(edges), "--seeds", "4", "--seed", "1"])
    assert code == 0


def test_generate_planted(tmp_path, capsys):
    out = str(tmp_path / "bench")
    code = main(
        ["generate", "planted", "--cells", "500", "--gtl-sizes", "40",
         "--seed", "2", "--out", out]
    )
    assert code == 0
    assert os.path.exists(os.path.join(out, "planted.aux"))


def test_generate_ispd(tmp_path, capsys):
    out = str(tmp_path / "bench")
    code = main(["generate", "ispd", "--scale", "0.05", "--seed", "2", "--out", out])
    assert code == 0
    assert os.path.exists(os.path.join(out, "ispd.aux"))


def test_generate_then_find(tmp_path, capsys):
    out = str(tmp_path / "bench")
    assert main(["generate", "planted", "--cells", "800", "--gtl-sizes", "60",
                 "--seed", "4", "--out", out]) == 0
    aux = os.path.join(out, "planted.aux")
    assert main(["find-gtl", aux, "--seeds", "8", "--seed", "5"]) == 0
    output = capsys.readouterr().out
    assert "GTL" in output


def test_experiment_fig2_with_csv(tmp_path, capsys, monkeypatch):
    # fig2 has fixed default sizes; shrink via monkeypatching defaults is
    # overkill — run the smallest harness through the CLI instead.
    import repro.experiments as experiments

    original = experiments.run_fig2

    def tiny_fig2(**kwargs):
        return original(num_cells=2000, gtl_size=150, seed=1)

    monkeypatch.setattr(experiments, "run_fig2", tiny_fig2)
    csv_path = str(tmp_path / "fig2.csv")
    code = main(["experiment", "fig2", "--csv", csv_path])
    assert code == 0
    assert os.path.exists(csv_path)


@pytest.fixture
def batch_setup(tmp_path):
    """Three small designs plus batch and sweep manifests."""
    import json

    designs = []
    for i in range(3):
        netlist, _ = planted_gtl_graph(700 + 40 * i, [50 + 5 * i], seed=i)
        path = str(tmp_path / f"d{i}.hgr")
        write_hgr(netlist, path)
        designs.append(f"d{i}.hgr")
    batch = tmp_path / "batch.json"
    batch.write_text(json.dumps({
        "defaults": {"num_seeds": 6, "seed": 1},
        "jobs": [{"design": d, "label": f"job{i}"} for i, d in enumerate(designs)],
    }))
    sweep = tmp_path / "sweep.json"
    sweep.write_text(json.dumps({
        "designs": designs[:2],
        "base": {"num_seeds": 4, "seed": 1},
        "grid": {"lambda_skip": [20, 20]},
    }))
    return tmp_path, str(batch), str(sweep)


def test_batch_cold_then_warm(batch_setup, capsys):
    tmp_path, batch, _ = batch_setup
    cache = str(tmp_path / "cache")
    assert main(["batch", batch, "--cache-dir", cache, "--quiet"]) == 0
    cold = capsys.readouterr().out
    assert "job0" in cold
    assert "3 job(s): 0 cache hit(s), 3 computed" in cold
    assert "3 put(s)" in cold

    assert main(["batch", batch, "--cache-dir", cache, "--quiet"]) == 0
    warm = capsys.readouterr().out
    assert "3 job(s): 3 cache hit(s), 0 computed" in warm
    assert "100% hit rate" in warm


def test_batch_no_cache_bypass(batch_setup, capsys):
    tmp_path, batch, _ = batch_setup
    cache = str(tmp_path / "cache")
    assert main(["batch", batch, "--cache-dir", cache, "--quiet"]) == 0
    capsys.readouterr()
    # --no-cache must recompute even though the cache is populated.
    assert main(["batch", batch, "--cache-dir", cache, "--no-cache", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "0 cache hit(s), 3 computed" in out
    assert "cache: cache disabled" in out


def test_batch_jsonl_output(batch_setup, capsys):
    import json

    tmp_path, batch, _ = batch_setup
    out_path = str(tmp_path / "results.jsonl")
    assert main(["batch", batch, "--no-cache", "--quiet", "--jsonl", out_path]) == 0
    rows = [json.loads(line) for line in open(out_path)]
    assert len(rows) == 3
    assert rows[0]["label"] == "job0"
    assert rows[0]["report"]["config"]["num_seeds"] == 6
    assert len(rows[0]["fingerprint"]) == 64


def test_sweep_deduplicates_and_reports(batch_setup, capsys):
    tmp_path, _, sweep = batch_setup
    cache = str(tmp_path / "cache")
    assert main(["sweep", sweep, "--cache-dir", cache, "--quiet"]) == 0
    out = capsys.readouterr().out
    # 2 designs x 2 identical grid values -> 4 points, 2 distinct jobs.
    assert "4 grid point(s) -> 2 distinct job(s) (2 deduplicated)" in out


def test_batch_rejects_bad_manifest(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"jobs": "nope"}')
    assert main(["batch", str(bad), "--no-cache", "--quiet"]) == 2
    assert "error" in capsys.readouterr().err

    bad.write_text('{"jobs": [{"design": "x.hgr", "bogus_field": 1}]}')
    assert main(["batch", str(bad), "--no-cache", "--quiet"]) == 2
    assert "bogus_field" in capsys.readouterr().err

    bad.write_text('{"defaults": ["num_seeds", 16], "jobs": [{"design": "x.hgr"}]}')
    assert main(["batch", str(bad), "--no-cache", "--quiet"]) == 2
    assert "defaults" in capsys.readouterr().err

    bad.write_text('{"jobs": [{"design": "missing.hgr"}]}')
    assert main(["batch", str(bad), "--no-cache", "--quiet"]) == 2
    assert "does not exist" in capsys.readouterr().err

    bad.write_text('{"jobs": [{"design": 42}]}')
    assert main(["batch", str(bad), "--no-cache", "--quiet"]) == 2
    assert 'string "design"' in capsys.readouterr().err

    bad.write_text('{"designs": [42], "grid": {"num_seeds": [4]}}')
    assert main(["sweep", str(bad), "--no-cache", "--quiet"]) == 2
    assert "must be a string" in capsys.readouterr().err


def test_cli_reports_repro_errors(tmp_path, capsys):
    bad = tmp_path / "bad.hgr"
    bad.write_text("bogus header\n")
    code = main(["find-gtl", str(bad)])
    assert code == 2
    assert "error" in capsys.readouterr().err


# ----------------------------------------------------------------------
# diff / detect / cache (incremental detection surface)
# ----------------------------------------------------------------------
def test_cli_diff_detect_cache_roundtrip(tmp_path, capsys):
    import json

    from repro.generators.perturb import rewire_pins
    from repro.io import load_design

    netlist, _ = planted_gtl_graph(800, [60], seed=5)
    base_path = str(tmp_path / "base.hgr")
    write_hgr(netlist, base_path)
    base = load_design(base_path)
    edited_path = str(tmp_path / "edited.hgr")
    write_hgr(rewire_pins(base, 0.001, rng=1), edited_path)

    delta_json = str(tmp_path / "delta.json")
    assert main(["diff", base_path, edited_path, "--json", delta_json]) == 0
    out = capsys.readouterr().out
    assert "delta:" in out and "delta fingerprint:" in out
    with open(delta_json) as handle:
        assert json.load(handle)["version"] == 1

    cache = str(tmp_path / "cache")
    common = ["--seeds", "6", "--seed", "3", "--max-order-length", "20",
              "--cache-dir", cache]
    assert main(["detect", base_path] + common) == 0
    assert "full recompute" in capsys.readouterr().out
    assert main(["detect", base_path] + common) == 0
    assert "cached" in capsys.readouterr().out
    assert main(["detect", edited_path, "--base", base_path] + common) == 0
    out = capsys.readouterr().out
    assert "incremental:" in out and "seed(s) re-run" in out
    assert "base fingerprint:" in out

    assert main(["cache", "stats", "--cache-dir", cache]) == 0
    out = capsys.readouterr().out
    assert "finder_trace" in out and "incremental_head" in out
    assert main(["cache", "prune", "--keep", "1", "--cache-dir", cache]) == 0
    assert "pruned" in capsys.readouterr().out


def test_cli_diff_identical_designs(tmp_path, capsys):
    netlist, _ = planted_gtl_graph(300, [40], seed=2)
    path = str(tmp_path / "same.hgr")
    write_hgr(netlist, path)
    assert main(["diff", path, path]) == 0
    assert "netlists identical" in capsys.readouterr().out
