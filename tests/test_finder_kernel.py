"""Parity of the array detection kernel against the scalar reference.

The contract (see :mod:`repro.netlist.backend`): both backends grow
bit-identical orderings, produce identical integer prefix curves and group
statistics, score within 1e-9 of each other, and detect the *same* GTL
cell sets — so detection artifacts and flow caches are shared across
backends.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FinderError
from repro.finder import FinderConfig, find_tangled_logic
from repro.finder.candidate import extract_candidate, scan_ordering, score_curve
from repro.finder.kernel import ArrayOrderingGrower, KernelTables
from repro.finder.ordering import LinearOrderingGrower, grow_linear_ordering
from repro.flow.flow import Flow
from repro.flow.stages import DetectStage
from repro.generators.random_gtl import planted_gtl_graph
from repro.metrics.gtl_score import ScoreContext
from repro.netlist.backend import forced_backend
from repro.netlist.builder import NetlistBuilder
from repro.netlist.ops import (
    PrefixScanner,
    group_connected,
    group_stats,
    scan_ordering_curves,
)
from repro.service.store import ResultStore


def _random_netlist(rng, max_cells=32, with_fixed=True):
    builder = NetlistBuilder()
    num_cells = rng.randint(4, max_cells)
    cells = [
        builder.add_cell(
            f"c{i}", fixed=(with_fixed and i > 1 and rng.random() < 0.1)
        )
        for i in range(num_cells)
    ]
    for i in range(rng.randint(3, 3 * num_cells)):
        degree = rng.randint(2, min(8, num_cells))
        builder.add_net(f"n{i}", rng.sample(cells, degree))
    return builder.build()


# ---------------------------------------------------------------- growers
def test_array_grower_rejects_bad_seeds(mixed_netlist):
    with pytest.raises(FinderError):
        ArrayOrderingGrower(mixed_netlist, 99)
    with pytest.raises(FinderError):
        ArrayOrderingGrower(mixed_netlist, 3)  # the pad
    assert ArrayOrderingGrower(mixed_netlist, 3, exclude_fixed=False).ordering == [3]


def test_kernel_tables_cached_per_netlist(mixed_netlist):
    assert KernelTables.for_netlist(mixed_netlist) is KernelTables.for_netlist(
        mixed_netlist
    )


def test_grower_api_matches_reference_step_by_step(two_cliques):
    reference = LinearOrderingGrower(two_cliques, 0, lambda_skip=0)
    array = ArrayOrderingGrower(two_cliques, 0, lambda_skip=0)
    while True:
        assert array.frontier_size == reference.frontier_size
        for cell in range(two_cliques.num_cells):
            assert array.connection_weight(cell) == reference.connection_weight(cell)
            assert array.cut_delta(cell) == reference.cut_delta(cell)
        step_reference, step_array = reference.step(), array.step()
        assert step_array == step_reference
        if step_reference is None:
            break


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_property_orderings_bit_identical(seed):
    rng = random.Random(seed)
    netlist = _random_netlist(rng)
    seeds = netlist.movable_cells()
    start = seeds[rng.randrange(len(seeds))]
    for exclude_fixed in (True, False):
        for lambda_skip in (0, 3, 20):
            scalar = grow_linear_ordering(
                netlist,
                start,
                netlist.num_cells,
                lambda_skip=lambda_skip,
                exclude_fixed=exclude_fixed,
                backend="python",
            )
            array = grow_linear_ordering(
                netlist,
                start,
                netlist.num_cells,
                lambda_skip=lambda_skip,
                exclude_fixed=exclude_fixed,
                backend="numpy",
            )
            assert array == scalar


# ---------------------------------------------------------------- curves
@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_property_prefix_curves_match_scanner_exactly(seed):
    rng = random.Random(seed)
    netlist = _random_netlist(rng, with_fixed=False)
    ordering = grow_linear_ordering(netlist, 0, netlist.num_cells, backend="python")
    scanner = PrefixScanner(netlist)
    curves = scan_ordering_curves(netlist, ordering)
    for index, cell in enumerate(ordering):
        scanner.add(cell)
        assert curves.stats_at(index) == scanner.stats()
    assert scan_ordering(netlist, ordering, backend="numpy") == scan_ordering(
        netlist, ordering, backend="python"
    )


def test_scan_ordering_rejects_duplicates_in_both_backends(triangle):
    from repro.errors import NetlistError

    for backend in ("python", "numpy"):
        with pytest.raises(NetlistError):
            scan_ordering(triangle, [0, 0, 1], backend=backend)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_property_score_curves_and_rent_within_1e9(seed):
    rng = random.Random(seed)
    netlist = _random_netlist(rng, with_fixed=False)
    ordering = grow_linear_ordering(netlist, 0, netlist.num_cells, backend="python")
    for metric in ("gtl_s", "ngtl_s", "gtl_sd"):
        scalar_scores, scalar_rent = score_curve(
            netlist, ordering, metric, rent_min_prefix=3, backend="python"
        )
        array_scores, array_rent = score_curve(
            netlist, ordering, metric, rent_min_prefix=3, backend="numpy"
        )
        assert abs(array_rent - scalar_rent) <= 1e-9
        assert len(array_scores) == len(scalar_scores)
        assert max(
            abs(a - b) for a, b in zip(array_scores, scalar_scores)
        ) <= 1e-9


# ---------------------------------------------------------------- groups
@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_property_group_stats_and_connectivity_parity(seed):
    rng = random.Random(seed)
    netlist = _random_netlist(rng, with_fixed=False)
    cells = list(range(netlist.num_cells))
    for _ in range(6):
        group = set(rng.sample(cells, rng.randint(1, len(cells))))
        assert group_stats(netlist, group, backend="numpy") == group_stats(
            netlist, group, backend="python"
        )
        assert group_connected(netlist, group, backend="numpy") == group_connected(
            netlist, group, backend="python"
        )
    assert not group_connected(netlist, [], backend="numpy")
    assert not group_connected(netlist, [], backend="python")


# ---------------------------------------------------------------- pipeline
@settings(max_examples=8, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_property_finder_reports_identical_on_planted(seed):
    rng = random.Random(seed)
    netlist, _ = planted_gtl_graph(
        rng.randint(400, 900), [rng.randint(60, 120)], seed=rng.randrange(1000)
    )
    config = FinderConfig(num_seeds=6, seed=rng.randrange(1000), min_gtl_size=20)

    with forced_backend("python"):
        scalar_report = find_tangled_logic(netlist, config)
    with forced_backend("numpy"):
        array_report = find_tangled_logic(netlist, config)
    assert [set(g.cells) for g in scalar_report.gtls] == [
        set(g.cells) for g in array_report.gtls
    ]
    assert abs(scalar_report.rent_exponent - array_report.rent_exponent) <= 1e-9
    for scalar_gtl, array_gtl in zip(scalar_report.gtls, array_report.gtls):
        assert abs(scalar_gtl.score - array_gtl.score) <= 1e-9
        assert scalar_gtl.cut == array_gtl.cut
        assert scalar_gtl.seed == array_gtl.seed


def test_extract_candidate_parity_includes_stats(small_planted):
    netlist, truth = small_planted
    seed = sorted(truth[0])[0]
    ordering = grow_linear_ordering(netlist, seed, 400, backend="python")
    config = FinderConfig(num_seeds=1, min_gtl_size=20)
    scalar = extract_candidate(netlist, ordering, config, backend="python")
    array = extract_candidate(netlist, ordering, config, backend="numpy")
    assert (scalar is None) == (array is None)
    if scalar is not None:
        assert array.cells == scalar.cells
        assert array.stats == scalar.stats
        assert abs(array.score - scalar.score) <= 1e-9


# ---------------------------------------------------------------- caching
def test_score_context_memoized_per_netlist(mixed_netlist):
    first = ScoreContext.for_netlist(mixed_netlist, 0.6, metric="gtl_sd")
    again = ScoreContext.for_netlist(mixed_netlist, 0.6, metric="gtl_sd")
    other_metric = ScoreContext.for_netlist(mixed_netlist, 0.6, metric="ngtl_s")
    other_rent = ScoreContext.for_netlist(mixed_netlist, 0.7, metric="gtl_sd")
    assert again is first
    assert other_metric is not first and other_rent is not first


def test_derived_cache_not_pickled(mixed_netlist):
    import pickle

    ScoreContext.for_netlist(mixed_netlist, 0.6)
    KernelTables.for_netlist(mixed_netlist)
    clone = pickle.loads(pickle.dumps(mixed_netlist))
    assert clone.derived_cache == {}


# ---------------------------------------------------------------- flow
def test_detect_stage_cache_is_shared_across_backends(tmp_path, monkeypatch):
    netlist, _ = planted_gtl_graph(600, [80], seed=3)
    config = FinderConfig(num_seeds=4, seed=7, min_gtl_size=20)

    monkeypatch.setenv("REPRO_SCALAR_BACKEND", "0")
    with ResultStore(str(tmp_path)) as store:
        computed = Flow([DetectStage(config)], name="detect").run(
            netlist, store=store
        )
    assert not computed["detect"].cached
    assert computed["detect"].metadata["kernel_backend"] == "numpy"

    # Same design + config under the scalar backend: identical fingerprint,
    # served from the array-computed cache row, identical artifact.
    monkeypatch.setenv("REPRO_SCALAR_BACKEND", "1")
    with ResultStore(str(tmp_path)) as store:
        cached = Flow([DetectStage(config)], name="detect").run(
            netlist, store=store
        )
    assert cached["detect"].cached
    assert cached["detect"].fingerprint == computed["detect"].fingerprint
    assert cached["detect"].metadata["kernel_backend"] == "python"
    first, second = computed.artifact("detect"), cached.artifact("detect")
    assert [g.cells for g in first.gtls] == [g.cells for g in second.gtls]
    assert first.rent_exponent == second.rent_exponent

    # And a scalar-computed run produces the same fingerprint from scratch.
    with ResultStore(str(tmp_path / "fresh")) as store:
        recomputed = Flow([DetectStage(config)], name="detect").run(
            netlist, store=store
        )
    assert not recomputed["detect"].cached
    assert recomputed["detect"].fingerprint == computed["detect"].fingerprint


# ---------------------------------------------------------------- pool
def test_pool_ships_prebuilt_arrays_once(small_planted):
    from repro.service.pool import WorkerPool

    netlist, _ = small_planted
    netlist.arrays  # parent builds the CSR view
    config = FinderConfig(num_seeds=4, seed=11, min_gtl_size=20)
    jobs = [(cell, 1000 + cell) for cell in netlist.movable_cells()[:4]]
    serial = WorkerPool(1).run_seed_jobs(netlist, config, jobs)
    with WorkerPool(2) as pool:
        parallel_first = pool.run_seed_jobs(netlist, config, jobs, key="k")
        shipped = pool.stats.context_shipments
        parallel_again = pool.run_seed_jobs(netlist, config, jobs, key="k")
    assert parallel_first == serial
    assert parallel_again == serial
    assert shipped >= 1
    # The second run reused the primed workers: no new context shipments
    # beyond bounced-batch re-sends.
    assert pool.stats.context_misses <= pool.stats.context_shipments
