"""Tests for the hypergraph netlist, builder and validation."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import NetlistError, ValidationError
from repro.netlist.builder import NetlistBuilder, netlist_from_edges
from repro.netlist.validate import validate_netlist


# ---------------------------------------------------------------- builder
def test_add_cell_auto_names():
    builder = NetlistBuilder()
    a = builder.add_cell()
    b = builder.add_cell()
    netlist = builder.build()
    assert netlist.cell_name(a) == "c0"
    assert netlist.cell_name(b) == "c1"


def test_duplicate_cell_name_rejected():
    builder = NetlistBuilder()
    builder.add_cell("x")
    with pytest.raises(NetlistError):
        builder.add_cell("x")


def test_duplicate_net_name_rejected():
    builder = NetlistBuilder()
    a, b = builder.add_cells(2)
    builder.add_net("n", [a, b])
    with pytest.raises(NetlistError):
        builder.add_net("n", [a, b])


def test_nonpositive_area_rejected():
    with pytest.raises(NetlistError):
        NetlistBuilder().add_cell(area=0.0)


def test_negative_pin_count_rejected():
    with pytest.raises(NetlistError):
        NetlistBuilder().add_cell(pin_count=-1)


def test_net_unknown_cell_rejected():
    builder = NetlistBuilder()
    builder.add_cell()
    with pytest.raises(NetlistError):
        builder.add_net("n", [0, 5])


def test_net_without_cells_rejected():
    with pytest.raises(NetlistError):
        NetlistBuilder().add_net("n", [])


def test_net_deduplicates_members():
    builder = NetlistBuilder()
    a, b = builder.add_cells(2)
    builder.add_net("n", [a, b, a])
    netlist = builder.build()
    assert netlist.cells_of_net(0) == (a, b)


def test_explicit_pin_count_below_incidences_rejected():
    builder = NetlistBuilder()
    a = builder.add_cell("a", pin_count=1)
    b = builder.add_cell("b")
    builder.add_net("n1", [a, b])
    builder.add_net("n2", [a, b])
    with pytest.raises(NetlistError):
        builder.build()


def test_drop_singleton_nets():
    builder = NetlistBuilder()
    a, b = builder.add_cells(2)
    builder.add_net("single", [a])
    builder.add_net("pair", [a, b])
    netlist = builder.build(drop_singleton_nets=True)
    assert netlist.num_nets == 1
    assert netlist.net_name(0) == "pair"


def test_set_pin_count_and_area():
    builder = NetlistBuilder()
    a = builder.add_cell()
    builder.set_pin_count(a, 7)
    builder.set_area(a, 3.5)
    netlist = builder.build()
    assert netlist.cell_pin_count(a) == 7
    assert netlist.cell_area(a) == 3.5


def test_set_pin_count_validation():
    builder = NetlistBuilder()
    builder.add_cell()
    with pytest.raises(NetlistError):
        builder.set_pin_count(5, 1)
    with pytest.raises(NetlistError):
        builder.set_pin_count(0, -1)
    with pytest.raises(NetlistError):
        builder.set_area(0, 0.0)


def test_netlist_from_edges():
    netlist = netlist_from_edges(3, [(0, 1), (1, 2)])
    assert netlist.num_cells == 3
    assert netlist.num_nets == 2
    assert netlist.net_degree(0) == 2


# ---------------------------------------------------------------- accessors
def test_basic_accessors(mixed_netlist):
    assert mixed_netlist.num_cells == 4
    assert mixed_netlist.num_nets == 3
    assert mixed_netlist.cell_index("a") == 0
    assert mixed_netlist.net_index("n2") == 1
    assert mixed_netlist.cell_is_fixed(3)
    assert mixed_netlist.cell("a" == "a") is not None


def test_unknown_names_raise(mixed_netlist):
    with pytest.raises(NetlistError):
        mixed_netlist.cell_index("ghost")
    with pytest.raises(NetlistError):
        mixed_netlist.net_index("ghost")


def test_pin_counting(mixed_netlist):
    # Cell "a": explicit 4 pins; b and c: 2 incidences each; pad: 1.
    assert mixed_netlist.cell_pin_count(0) == 4
    assert mixed_netlist.cell_pin_count(1) == 2
    assert mixed_netlist.num_pins == 4 + 2 + 2 + 1
    assert mixed_netlist.average_pins_per_cell == pytest.approx(9 / 4)


def test_num_incidences(mixed_netlist):
    assert mixed_netlist.num_incidences == 7


def test_movable_and_fixed(mixed_netlist):
    assert mixed_netlist.fixed_cells() == [3]
    assert mixed_netlist.movable_cells() == [0, 1, 2]


def test_neighbors(triangle):
    assert sorted(triangle.neighbors(0)) == [1, 2]


def test_neighbors_exclude_self(star_netlist):
    assert sorted(star_netlist.neighbors(2)) == [0, 1, 3, 4]


def test_cells_and_nets_iterators(triangle):
    assert len(list(triangle.cells())) == 3
    nets = list(triangle.nets())
    assert len(nets) == 3
    assert nets[0].degree == 2


def test_equality_and_hash(triangle):
    builder = NetlistBuilder()
    a, b, c = builder.add_cells(3)
    builder.add_net("ab", [a, b])
    builder.add_net("bc", [b, c])
    builder.add_net("ca", [c, a])
    other = builder.build()
    assert other == triangle
    assert hash(other) == hash(triangle)


def test_repr(triangle):
    assert "cells=3" in repr(triangle)


def test_empty_netlist_average_pins_raises():
    netlist = NetlistBuilder().build()
    with pytest.raises(NetlistError):
        netlist.average_pins_per_cell


# ---------------------------------------------------------------- validate
def test_validate_accepts_good_netlists(triangle, two_cliques, mixed_netlist):
    validate_netlist(triangle)
    validate_netlist(two_cliques)
    validate_netlist(mixed_netlist)


def test_validate_requires_connected_pins_flag():
    builder = NetlistBuilder()
    builder.add_cell("floating")
    netlist = builder.build()
    validate_netlist(netlist)  # fine by default
    with pytest.raises(ValidationError):
        validate_netlist(netlist, require_connected_pins=True)


@given(st.integers(2, 30), st.data())
def test_property_builder_roundtrip(num_cells, data):
    """Random netlists: incidences consistent, pin counts >= degrees."""
    builder = NetlistBuilder()
    cells = builder.add_cells(num_cells)
    num_nets = data.draw(st.integers(1, 30))
    for i in range(num_nets):
        members = data.draw(
            st.lists(st.sampled_from(cells), min_size=1, max_size=5, unique=True)
        )
        builder.add_net(f"n{i}", members)
    netlist = builder.build()
    validate_netlist(netlist)
    total = sum(netlist.net_degree(e) for e in range(netlist.num_nets))
    assert netlist.num_incidences == total
    for cell in range(netlist.num_cells):
        assert netlist.cell_pin_count(cell) >= netlist.cell_degree(cell)
