"""Unit and property tests for the lazy max-heap."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.lazyheap import LazyMaxHeap


def test_empty_pop_raises():
    heap = LazyMaxHeap()
    with pytest.raises(KeyError):
        heap.pop()


def test_empty_peek_raises():
    with pytest.raises(KeyError):
        LazyMaxHeap().peek()


def test_push_pop_single():
    heap = LazyMaxHeap()
    heap.push("a", 1.0)
    assert heap.pop() == ("a", 1.0, 0.0)
    assert len(heap) == 0


def test_max_order():
    heap = LazyMaxHeap()
    heap.push("low", 1.0)
    heap.push("high", 5.0)
    heap.push("mid", 3.0)
    assert heap.pop()[0] == "high"
    assert heap.pop()[0] == "mid"
    assert heap.pop()[0] == "low"


def test_update_priority_up():
    heap = LazyMaxHeap()
    heap.push("a", 1.0)
    heap.push("b", 2.0)
    heap.push("a", 3.0)  # re-prioritize
    assert heap.pop()[0] == "a"
    assert heap.pop()[0] == "b"
    assert len(heap) == 0


def test_update_priority_down():
    heap = LazyMaxHeap()
    heap.push("a", 5.0)
    heap.push("b", 2.0)
    heap.push("a", 1.0)
    assert heap.pop()[0] == "b"
    assert heap.pop()[0] == "a"


def test_secondary_breaks_ties():
    heap = LazyMaxHeap()
    heap.push("x", 1.0, secondary=0.0)
    heap.push("y", 1.0, secondary=2.0)
    assert heap.pop()[0] == "y"


def test_insertion_order_breaks_remaining_ties():
    heap = LazyMaxHeap()
    heap.push("first", 1.0, 1.0)
    heap.push("second", 1.0, 1.0)
    assert heap.pop()[0] == "first"


def test_discard():
    heap = LazyMaxHeap()
    heap.push("a", 5.0)
    heap.push("b", 1.0)
    heap.discard("a")
    assert "a" not in heap
    assert heap.pop()[0] == "b"


def test_discard_missing_is_noop():
    heap = LazyMaxHeap()
    heap.discard("ghost")
    assert len(heap) == 0


def test_contains_and_priority():
    heap = LazyMaxHeap()
    heap.push("a", 2.5, 1.5)
    assert "a" in heap
    assert heap.priority("a") == (2.5, 1.5)
    assert heap.priority("b") is None


def test_peek_does_not_remove():
    heap = LazyMaxHeap()
    heap.push("a", 1.0)
    assert heap.peek()[0] == "a"
    assert len(heap) == 1


def test_len_counts_live_entries():
    heap = LazyMaxHeap()
    heap.push("a", 1.0)
    heap.push("a", 2.0)
    heap.push("b", 1.0)
    assert len(heap) == 2


@given(
    st.lists(
        st.tuples(st.integers(0, 20), st.floats(-100, 100, allow_nan=False)),
        min_size=1,
        max_size=200,
    )
)
def test_property_pop_order_matches_final_priorities(operations):
    """After arbitrary pushes/updates, pops come out in descending priority."""
    heap = LazyMaxHeap()
    final = {}
    for key, priority in operations:
        heap.push(key, priority)
        final[key] = priority
    popped = []
    while len(heap):
        item, primary, _ = heap.pop()
        assert final[item] == primary
        popped.append(primary)
    assert popped == sorted(popped, reverse=True)
    assert len(popped) == len(final)


@given(st.lists(st.integers(0, 10), min_size=1, max_size=50))
def test_property_discard_removes(keys):
    heap = LazyMaxHeap()
    for key in keys:
        heap.push(key, float(key))
    for key in set(keys):
        heap.discard(key)
    assert len(heap) == 0
