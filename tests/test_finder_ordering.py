"""Tests for Phase I — linear ordering generation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FinderError
from repro.finder.ordering import LinearOrderingGrower, grow_linear_ordering
from repro.netlist.builder import NetlistBuilder
from repro.netlist.ops import cut_size


def test_seed_out_of_range(triangle):
    with pytest.raises(FinderError):
        LinearOrderingGrower(triangle, 99)


def test_fixed_seed_rejected(mixed_netlist):
    with pytest.raises(FinderError):
        LinearOrderingGrower(mixed_netlist, 3)  # the pad


def test_fixed_seed_allowed_when_included(mixed_netlist):
    grower = LinearOrderingGrower(mixed_netlist, 3, exclude_fixed=False)
    assert grower.ordering == [3]


def test_ordering_starts_with_seed(triangle):
    assert grow_linear_ordering(triangle, 1, 3)[0] == 1


def test_ordering_has_no_duplicates(two_cliques):
    ordering = grow_linear_ordering(two_cliques, 0, 8)
    assert len(ordering) == len(set(ordering)) == 8


def test_ordering_stops_at_max_length(two_cliques):
    assert len(grow_linear_ordering(two_cliques, 0, 5)) == 5


def test_ordering_stops_when_component_exhausted():
    builder = NetlistBuilder()
    a, b, c, d = builder.add_cells(4)
    builder.add_net("n1", [a, b])
    builder.add_net("n2", [c, d])
    ordering = grow_linear_ordering(builder.build(), 0, 10)
    assert sorted(ordering) == [0, 1]


def test_ordering_prefers_clique_before_bridge(two_cliques):
    """All of clique A is absorbed before crossing the bridge."""
    ordering = grow_linear_ordering(two_cliques, 0, 8)
    assert set(ordering[:4]) == {0, 1, 2, 3}


def test_exclude_fixed_cells(mixed_netlist):
    ordering = grow_linear_ordering(mixed_netlist, 0, 4)
    assert 3 not in ordering


def test_each_added_cell_touches_prefix(two_block_planted):
    """Every non-seed cell must share a net with the preceding prefix."""
    netlist, _ = two_block_planted
    ordering = grow_linear_ordering(netlist, 17, 60)
    prefix = {ordering[0]}
    for cell in ordering[1:]:
        touches = any(
            any(other in prefix for other in netlist.cells_of_net(net))
            for net in netlist.nets_of_cell(cell)
        )
        assert touches
        prefix.add(cell)


def test_connection_weight_definition(star_netlist):
    """w(v) = sum over nets touching the group of 1/(|e| - |e∩S| + 1)."""
    grower = LinearOrderingGrower(star_netlist, 0)
    # One 5-pin net, 1 pin inside: weight = 1/(5-1+1) = 0.2 per candidate.
    for candidate in (1, 2, 3, 4):
        assert grower.connection_weight(candidate) == pytest.approx(0.2)


def test_connection_weight_accumulates(two_cliques):
    grower = LinearOrderingGrower(two_cliques, 0)
    # Candidate 1 shares exactly one 2-pin net with {0}: weight 1/2.
    assert grower.connection_weight(1) == pytest.approx(0.5)
    grower.step()
    # After absorbing one of {1,2,3}, the remaining clique members share
    # two nets with the group: weight 1.
    remaining = [c for c in (1, 2, 3) if c not in set(grower.ordering)]
    for cell in remaining:
        assert grower.connection_weight(cell) == pytest.approx(1.0)


def test_cut_delta_tracks_brute_force(two_cliques):
    grower = LinearOrderingGrower(two_cliques, 0)
    while True:
        group = set(grower.ordering)
        base_cut = cut_size(two_cliques, group)
        # check every frontier candidate
        for candidate in range(8):
            if candidate in group:
                continue
            weight = grower.connection_weight(candidate)
            if weight <= 0:
                continue
            expected = cut_size(two_cliques, group | {candidate}) - base_cut
            assert grower.cut_delta(candidate) == expected
        if grower.step() is None or len(grower.ordering) == 8:
            break


def test_lambda_skip_zero_disables_optimization(small_planted):
    netlist, truth = small_planted
    seed = sorted(truth[0])[0]
    exact = grow_linear_ordering(netlist, seed, 300, lambda_skip=0)
    skipped = grow_linear_ordering(netlist, seed, 300, lambda_skip=20)
    # Both should recover the planted block within the first |block| cells.
    block = truth[0]
    assert len(set(exact[: len(block)]) & block) / len(block) > 0.95
    assert len(set(skipped[: len(block)]) & block) / len(block) > 0.95


def test_frontier_size(two_cliques):
    grower = LinearOrderingGrower(two_cliques, 0)
    assert grower.frontier_size == 3  # rest of clique A
    grower.step()
    assert grower.frontier_size == 2


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_property_cut_delta_invariant(seed):
    """cut_delta always equals the brute-force cut difference."""
    rng = random.Random(seed)
    builder = NetlistBuilder()
    num_cells = rng.randint(4, 16)
    cells = builder.add_cells(num_cells)
    for i in range(rng.randint(3, 25)):
        degree = rng.randint(2, min(4, num_cells))
        builder.add_net(f"n{i}", rng.sample(cells, degree))
    netlist = builder.build()

    grower = LinearOrderingGrower(netlist, rng.randrange(num_cells), lambda_skip=0)
    for _ in range(num_cells):
        group = set(grower.ordering)
        base = cut_size(netlist, group)
        for candidate in range(num_cells):
            if candidate in group or grower.connection_weight(candidate) <= 0:
                continue
            expected = cut_size(netlist, group | {candidate}) - base
            assert grower.cut_delta(candidate) == expected
        if grower.step() is None:
            break
