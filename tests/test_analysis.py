"""Tests for curves, ground-truth matching and CSV output."""

import csv

import pytest

from repro.analysis import (
    agglomeration_curve,
    match_to_ground_truth,
    metric_comparison_curves,
    miss_rate,
    over_rate,
    write_csv,
)
from repro.finder.result import GTL


def _gtl(cells, score=0.1):
    return GTL(
        cells=frozenset(cells),
        size=len(cells),
        cut=1,
        ngtl_score=score,
        gtl_sd_score=score / 2,
        score=score,
        seed=0,
        rent_exponent=0.6,
    )


def test_miss_and_over_rates():
    truth = frozenset({1, 2, 3, 4})
    assert miss_rate(truth, {1, 2}) == pytest.approx(0.5)
    assert over_rate(truth, {1, 2, 3, 4, 5, 6}) == pytest.approx(0.5)
    assert miss_rate(truth, truth) == 0.0
    assert over_rate(truth, truth) == 0.0


def test_rates_empty_truth():
    assert miss_rate(frozenset(), {1}) == 0.0
    assert over_rate(frozenset(), {1}) == 0.0


def test_match_to_ground_truth_basic():
    truth = [frozenset({1, 2, 3}), frozenset({10, 11})]
    gtls = [_gtl({1, 2, 3}), _gtl({10, 11, 12})]
    matches = match_to_ground_truth(truth, gtls)
    assert matches[0].found is gtls[0]
    assert matches[0].miss == 0.0
    assert matches[1].over == pytest.approx(0.5)
    assert all(m.detected for m in matches)


def test_match_unmatched_block():
    truth = [frozenset({1, 2}), frozenset({5, 6})]
    gtls = [_gtl({1, 2})]
    matches = match_to_ground_truth(truth, gtls)
    assert matches[1].found is None
    assert matches[1].miss == 1.0
    assert not matches[1].detected


def test_match_each_gtl_used_once():
    truth = [frozenset({1, 2, 3}), frozenset({2, 3, 4})]
    gtls = [_gtl({1, 2, 3, 4})]
    matches = match_to_ground_truth(truth, gtls)
    assert sum(1 for m in matches if m.found is not None) == 1


def test_agglomeration_curve_finds_block(small_planted):
    netlist, truth = small_planted
    seed = sorted(truth[0])[0]
    curve = agglomeration_curve(netlist, seed, 500)
    size, value = curve.minimum
    assert abs(size - len(truth[0])) <= 3
    assert value < 0.3
    assert len(curve.sizes) == len(curve.values)


def test_metric_comparison_curves_share_sizes(small_planted):
    netlist, truth = small_planted
    seed = sorted(truth[0])[0]
    curves = metric_comparison_curves(netlist, seed, 400)
    assert [c.label for c in curves] == ["nGTL-S", "GTL-SD", "ratio-cut"]
    assert curves[0].sizes == curves[1].sizes == curves[2].sizes


def test_write_csv(tmp_path):
    path = str(tmp_path / "out.csv")
    write_csv(path, ["a", "b"], [(1, 2), (3, 4)])
    with open(path) as handle:
        rows = list(csv.reader(handle))
    assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]
