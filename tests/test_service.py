"""Tests of the batch detection service layer (:mod:`repro.service`)."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.errors import ServiceError
from repro.finder import FinderConfig, FinderReport, TangledLogicFinder, find_tangled_logic
from repro.finder.config import DEFAULT_RENT_EXPONENT
from repro.generators.random_gtl import planted_gtl_graph
from repro.service import (
    BatchRunner,
    DetectionJob,
    ResultStore,
    WorkerPool,
    expand_grid,
    fingerprint_config,
    fingerprint_netlist,
    job_fingerprint,
    plan_sweep,
    report_from_dict,
    report_to_dict,
    run_sweep,
)

CFG = FinderConfig(num_seeds=6, seed=3)


@pytest.fixture(scope="module")
def small():
    """A small planted netlist plus a deterministic config."""
    netlist, truth = planted_gtl_graph(800, [60], seed=5)
    return netlist, truth


@pytest.fixture(scope="module")
def small_report(small):
    netlist, _ = small
    return find_tangled_logic(netlist, CFG)


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def test_fingerprint_is_content_based(small):
    netlist, _ = small
    rebuilt, _ = planted_gtl_graph(800, [60], seed=5)
    assert rebuilt is not netlist
    assert fingerprint_netlist(rebuilt) == fingerprint_netlist(netlist)

    other, _ = planted_gtl_graph(800, [60], seed=6)
    assert fingerprint_netlist(other) != fingerprint_netlist(netlist)


def test_fingerprint_config_ignores_workers():
    assert fingerprint_config(CFG) == fingerprint_config(CFG.with_overrides(workers=8))
    assert fingerprint_config(CFG) != fingerprint_config(CFG.with_overrides(num_seeds=7))


def test_fingerprint_stable_across_process_restarts(small):
    """The same content must hash identically in a fresh interpreter."""
    netlist, _ = small
    script = (
        "from repro.generators.random_gtl import planted_gtl_graph\n"
        "from repro.finder import FinderConfig\n"
        "from repro.service import job_fingerprint\n"
        "netlist, _ = planted_gtl_graph(800, [60], seed=5)\n"
        "print(job_fingerprint(netlist, FinderConfig(num_seeds=6, seed=3)))\n"
    )
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    output = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True, env=env, check=True
    ).stdout.strip()
    assert output == job_fingerprint(netlist, CFG)


def test_job_fingerprint_accepts_precomputed_netlist_hash(small):
    netlist, _ = small
    pre = fingerprint_netlist(netlist)
    assert job_fingerprint(netlist, CFG, netlist_fingerprint=pre) == job_fingerprint(
        netlist, CFG
    )


# ----------------------------------------------------------------------
# Codec + store
# ----------------------------------------------------------------------
def test_report_codec_round_trip(small_report):
    decoded = report_from_dict(json.loads(json.dumps(report_to_dict(small_report))))
    assert decoded == small_report


def test_store_round_trip_is_bit_identical(tmp_path, small_report):
    with ResultStore(str(tmp_path)) as store:
        store.put("fp1", small_report)
        assert "fp1" in store
        assert len(store) == 1
        assert store.get("fp1") == small_report
        assert store.stats.hits == 1 and store.stats.misses == 0


def test_store_persists_across_instances(tmp_path, small_report):
    with ResultStore(str(tmp_path)) as store:
        store.put("fp1", small_report)
    with ResultStore(str(tmp_path)) as store:
        assert store.get("fp1") == small_report


def test_store_miss_evict_and_lru(tmp_path, small_report):
    with ResultStore(str(tmp_path)) as store:
        assert store.get("absent") is None
        assert store.stats.misses == 1
        store.put("a", small_report)
        store.put("b", small_report)
        assert store.evict("a") is True
        assert store.evict("a") is False
        assert store.evict_lru(0) == 1
        assert len(store) == 0


def test_store_drops_rows_with_invalid_configs(tmp_path, small_report):
    """Version-skewed rows whose config no longer validates must read as a
    miss and be evicted, not raise FinderError into the batch run."""
    with ResultStore(str(tmp_path)) as store:
        store.put("fp1", small_report)
        store._conn.execute(
            "UPDATE results SET payload = ?",
            (store._conn.execute("SELECT payload FROM results").fetchone()[0]
             .replace('"num_seeds":6', '"num_seeds":0'),),
        )
        store._conn.commit()
        assert store.get("fp1") is None
        assert len(store) == 0


def test_store_drops_corrupt_payloads(tmp_path, small_report):
    store = ResultStore(str(tmp_path))
    store.put("fp1", small_report)
    store._conn.execute("UPDATE results SET payload = '{broken'")
    store._conn.commit()
    assert store.get("fp1") is None  # treated as a miss, not an exception
    assert len(store) == 0  # corrupt row evicted
    store.close()
    with pytest.raises(ServiceError):
        store.get("fp1")


# ----------------------------------------------------------------------
# Worker pool
# ----------------------------------------------------------------------
def test_pool_matches_serial_results(small):
    netlist, _ = small
    serial = find_tangled_logic(netlist, CFG)
    with WorkerPool(2) as pool:
        report = TangledLogicFinder(netlist, CFG).run(pool=pool)
        again = TangledLogicFinder(netlist, CFG).run(pool=pool)
    assert report.gtls == serial.gtls
    assert report.rent_exponent == serial.rent_exponent
    assert again.gtls == serial.gtls
    # The context is shipped on the first run only; later runs stream bare
    # seed batches (modulo unprimed-worker misses, which re-ship).
    assert pool.stats.context_shipments <= 2 + pool.stats.context_misses


def test_pool_workers_field_does_not_change_results(small):
    netlist, _ = small
    serial = find_tangled_logic(netlist, CFG)
    parallel = find_tangled_logic(netlist, CFG.with_overrides(workers=2))
    assert parallel.gtls == serial.gtls


def test_pool_serial_path_avoids_processes(small):
    netlist, _ = small
    pool = WorkerPool(1)
    report = TangledLogicFinder(netlist, CFG).run(pool=pool)
    assert pool.stats.serial_runs == 1
    assert pool._executor is None
    assert report.gtls == find_tangled_logic(netlist, CFG).gtls


def test_pool_validates_arguments():
    with pytest.raises(ServiceError):
        WorkerPool(0)
    with pytest.raises(ServiceError):
        WorkerPool(1, max_retries=-1)
    with pytest.raises(ServiceError):
        WorkerPool(1, batches_per_worker=0)


# ----------------------------------------------------------------------
# Batch runner
# ----------------------------------------------------------------------
def test_batch_runner_cache_hit_is_bit_identical(tmp_path, small):
    netlist, _ = small
    job = DetectionJob(netlist=netlist, config=CFG, label="j")
    with ResultStore(str(tmp_path)) as store:
        with BatchRunner(workers=1, store=store) as runner:
            cold = runner.run([job])[0]
            warm = runner.run([job])[0]
    assert cold.cached is False and cold.ok
    assert warm.cached is True and warm.attempts == 0
    assert warm.report == cold.report


def test_batch_runner_no_cache_bypasses_store(tmp_path, small):
    netlist, _ = small
    job = DetectionJob(netlist=netlist, config=CFG)
    with ResultStore(str(tmp_path)) as store:
        with BatchRunner(workers=1, store=store, use_cache=False) as runner:
            first = runner.run([job])[0]
            second = runner.run([job])[0]
        assert store.stats.lookups == 0 and store.stats.puts == 0
        assert len(store) == 0
    assert not first.cached and not second.cached
    # Both runs recomputed (runtime differs) but the science is identical.
    assert second.report.gtls == first.report.gtls
    assert second.report.rent_exponent == first.report.rent_exponent


def test_batch_runner_never_caches_nondeterministic_jobs(tmp_path, small):
    netlist, _ = small
    job = DetectionJob(netlist=netlist, config=FinderConfig(num_seeds=4, seed=None))
    with ResultStore(str(tmp_path)) as store:
        with BatchRunner(workers=1, store=store) as runner:
            result = runner.run([job])[0]
        assert len(store) == 0
    assert result.ok and not result.cached


def test_batch_runner_records_finder_errors(tmp_path, small):
    netlist, _ = small
    # min_gtl_size beyond the netlist is a config-level FinderError at run
    # time; the runner must record it, not raise.
    bad = DetectionJob(
        netlist=netlist,
        config=FinderConfig(num_seeds=2, seed=1, seed_strategy="uniform",
                            min_gtl_size=10_000, max_order_length=50),
    )
    good = DetectionJob(netlist=netlist, config=CFG)
    events = []
    with BatchRunner(workers=1, progress=events.append) as runner:
        results = runner.run([bad, good])
    assert results[0].ok  # large min size just means zero candidates
    assert results[1].ok
    assert [e.done for e in events] == [1, 2]
    assert all(e.total == 2 for e in events)


def test_batch_runner_reports_construction_errors():
    from repro.netlist.builder import NetlistBuilder

    builder = NetlistBuilder()
    builder.add_cell("only")
    tiny = builder.build()
    with BatchRunner(workers=1) as runner:
        result = runner.run([DetectionJob(netlist=tiny, config=CFG)])[0]
    assert result.report is None
    assert not result.ok
    assert "netlist too small" in result.error


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------
def test_expand_grid_orders_and_validates():
    combos = expand_grid(CFG, {"num_seeds": [4, 8], "lambda_skip": [0]})
    assert [c[0] for c in combos] == [
        {"lambda_skip": 0, "num_seeds": 4},
        {"lambda_skip": 0, "num_seeds": 8},
    ]
    with pytest.raises(ServiceError):
        expand_grid(CFG, {"not_a_field": [1]})
    with pytest.raises(ServiceError):
        expand_grid(CFG, {"num_seeds": []})
    with pytest.raises(ServiceError):
        expand_grid(CFG, {"num_seeds": [0]})  # invalid value -> ServiceError


def test_expand_grid_unknown_axis_lists_valid_fields():
    import dataclasses

    with pytest.raises(ServiceError) as excinfo:
        expand_grid(CFG, {"lamda_skip": [1]})  # typo'd axis
    message = str(excinfo.value)
    assert "lamda_skip" in message and "valid fields" in message
    # Every real FinderConfig field is named, so the fix is in the error.
    for config_field in dataclasses.fields(FinderConfig):
        assert config_field.name in message


def test_plan_sweep_deduplicates_overlapping_points(small):
    netlist, _ = small
    # lambda_skip=20 equals the base value, so the grid collapses 4 -> 2.
    plan = plan_sweep(
        [("d", netlist)], CFG, {"lambda_skip": [20, 20], "num_seeds": [4, 6]}
    )
    assert len(plan.points) == 4
    assert len(plan.jobs) == 2
    assert plan.num_deduplicated == 2
    answered = {point.job_index for point in plan.points}
    assert answered == set(range(len(plan.jobs)))


def test_plan_sweep_never_deduplicates_nondeterministic_points(small):
    netlist, _ = small
    base = FinderConfig(num_seeds=4, seed=None)
    plan = plan_sweep([("d", netlist)], base, {"lambda_skip": [20, 20]})
    # Identical configs, but seed=None means independent random samples:
    # both points must get their own job.
    assert len(plan.points) == 2
    assert len(plan.jobs) == 2
    assert plan.num_deduplicated == 0


def test_worker_context_memo_is_bounded(small):
    from repro.service import pool as pool_module

    netlist, _ = small
    pool_module._WORKER_CONTEXTS.clear()
    try:
        for i in range(pool_module._WORKER_CONTEXT_LIMIT + 2):
            result = pool_module._worker_run_batch(
                f"k{i}", [], context=(netlist, CFG)
            )
            assert result == []
        assert len(pool_module._WORKER_CONTEXTS) == pool_module._WORKER_CONTEXT_LIMIT
        # The oldest contexts were evicted; a bare batch for one bounces.
        assert pool_module._worker_run_batch("k0", []) == "__repro-missing-context__"
        # A retained one still answers without re-shipping.
        last = f"k{pool_module._WORKER_CONTEXT_LIMIT + 1}"
        assert pool_module._worker_run_batch(last, []) == []
    finally:
        pool_module._WORKER_CONTEXTS.clear()


def test_run_sweep_fans_results_back_to_points(tmp_path, small):
    netlist, _ = small
    with ResultStore(str(tmp_path)) as store:
        with BatchRunner(workers=1, store=store) as runner:
            outcome = run_sweep(
                [("d", netlist)], CFG, {"num_seeds": [4, 4, 6]}, runner
            )
    pairs = outcome.point_results()
    assert len(pairs) == 3
    assert pairs[0][1] is pairs[1][1]  # deduplicated points share one result
    assert all(result.ok for _, result in pairs)


# ----------------------------------------------------------------------
# Rent fallback satellite
# ----------------------------------------------------------------------
def test_rent_fallback_flag_default_false(small_report):
    assert small_report.rent_fallback is False
    assert "assumed default" not in small_report.summary()


def test_rent_fallback_fires_on_degenerate_netlist():
    """A netlist where no ordering yields a usable Rent prefix must be
    flagged, not silently reported as a measured p=0.6."""
    from repro.netlist.builder import NetlistBuilder

    builder = NetlistBuilder()
    builder.add_cells(10)  # fully disconnected: every ordering is [seed]
    netlist = builder.build()
    report = TangledLogicFinder(
        netlist, FinderConfig(num_seeds=3, seed=1)
    ).run()
    assert report.rent_fallback is True
    assert report.rent_exponent == DEFAULT_RENT_EXPONENT
    assert "assumed default" in report.summary()


def test_fingerprint_normalizes_int_valued_float_fields():
    a = CFG.with_overrides(refine_length_factor=2)
    b = CFG.with_overrides(refine_length_factor=2.0)
    assert a == b
    assert fingerprint_config(a) == fingerprint_config(b)


def test_cache_hit_runtime_is_measured(tmp_path, small):
    netlist, _ = small
    job = DetectionJob(netlist=netlist, config=CFG)
    with ResultStore(str(tmp_path)) as store:
        with BatchRunner(workers=1, store=store) as runner:
            runner.run_one(job)
            warm = runner.run_one(job)
    assert warm.cached
    assert warm.runtime_seconds > 0.0  # lookup time, not a hardcoded zero


def test_rent_fallback_is_named_constant_and_flagged(small_report):
    assert DEFAULT_RENT_EXPONENT == 0.6
    flagged = FinderReport(
        gtls=(),
        config=CFG,
        rent_exponent=DEFAULT_RENT_EXPONENT,
        num_orderings=0,
        num_candidates=0,
        runtime_seconds=0.0,
        rent_fallback=True,
    )
    assert "assumed default" in flagged.summary()


# ----------------------------------------------------------------------
# Experiments cache opt-in
# ----------------------------------------------------------------------
def test_experiments_detect_uses_cache_dir(tmp_path, monkeypatch, small):
    from repro.experiments.common import CACHE_ENV_VAR, detect

    netlist, _ = small
    monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
    first = detect(netlist, CFG)
    second = detect(netlist, CFG)
    assert second == first
    with ResultStore(str(tmp_path)) as store:
        assert len(store) == 1


def test_experiments_detect_without_cache_dir(monkeypatch, small):
    from repro.experiments.common import CACHE_ENV_VAR, detect

    netlist, _ = small
    monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
    report = detect(netlist, CFG)
    plain = find_tangled_logic(netlist, CFG)
    assert report.gtls == plain.gtls
    assert report.rent_exponent == plain.rent_exponent


# ----------------------------------------------------------------------
# WAL concurrency: daemon threads + CLI runs share one cache directory
# ----------------------------------------------------------------------
def test_store_uses_wal_journal_mode(tmp_path):
    with ResultStore(str(tmp_path)) as store:
        assert store.journal_mode.lower() == "wal"


def test_store_two_concurrent_writers(tmp_path, small_report):
    """Two open stores (daemon + a concurrent CLI run) write one cache dir.

    Before WAL + busy_timeout, the second writer would hit ``database is
    locked``; now both sets of puts land and each store reads the other's
    rows through its own connection.
    """
    import dataclasses
    import threading

    writers = [ResultStore(str(tmp_path)) for _ in range(2)]
    errors = []

    def hammer(store, offset):
        try:
            for index in range(20):
                report = dataclasses.replace(
                    small_report,
                    config=dataclasses.replace(
                        small_report.config, seed=offset * 100 + index
                    ),
                )
                store.put(f"writer{offset}-{index:03d}", report)
        except Exception as error:  # surfaced after the join
            errors.append(error)

    threads = [
        threading.Thread(target=hammer, args=(store, offset))
        for offset, store in enumerate(writers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert errors == []
    try:
        # Cross-visibility: each connection sees both writers' rows.
        for store in writers:
            assert len(store) == 40
            assert store.get("writer0-000") is not None
            assert store.get("writer1-019") is not None
    finally:
        for store in writers:
            store.close()


def test_store_concurrent_same_fingerprint_upsert(tmp_path, small_report):
    """Both writers racing on the SAME fingerprint must not corrupt the row."""
    import threading

    writers = [ResultStore(str(tmp_path)) for _ in range(2)]
    errors = []

    def hammer(store):
        try:
            for _ in range(10):
                store.put("shared-fingerprint", small_report)
        except Exception as error:
            errors.append(error)

    threads = [threading.Thread(target=hammer, args=(s,)) for s in writers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert errors == []
    try:
        assert writers[0].get("shared-fingerprint") == small_report
        assert len(writers[1]) == 1
    finally:
        for store in writers:
            store.close()
