"""Sharded sweep execution: partitioner, coordinator, merge, aggregate."""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main
from repro.errors import ServiceError
from repro.finder.config import FinderConfig
from repro.generators.random_gtl import planted_gtl_graph
from repro.io.hgr import write_hgr
from repro.service.aggregate import (
    AGGREGATE_SCHEMA,
    aggregate_sweep,
    point_rows,
    write_aggregate,
)
from repro.service.coordinator import (
    SweepCoordinator,
    _execute_shard,
    shard_store_path,
)
from repro.service.jobs import BatchRunner
from repro.service.shard import partition_plan, shard_sort_key
from repro.service.store import (
    KIND_FINDER_REPORT,
    MergeStats,
    ResultStore,
    row_schema_version,
)
from repro.service.sweep import plan_sweep, run_sweep

CFG = FinderConfig(num_seeds=4, seed=3)
GRID = {"lambda_skip": [0, 10], "min_gtl_size": [20, 30]}


@pytest.fixture(scope="module")
def small():
    netlist, truth = planted_gtl_graph(600, [50], seed=5)
    return netlist, truth


# A tiny netlist for planning-only tests (never executed); module-level so
# hypothesis-driven tests can use it without fixture plumbing.
_TINY, _ = planted_gtl_graph(200, [30], seed=1)


# ----------------------------------------------------------------------
# Partitioner
# ----------------------------------------------------------------------
def test_partition_covers_every_job_exactly_once(small):
    netlist, _ = small
    plan = plan_sweep([("d", netlist)], CFG, GRID)
    shards = partition_plan(plan, 3)
    assert len(shards) == 3
    covered = sorted(i for shard in shards for i in shard.job_indices)
    assert covered == list(range(len(plan.jobs)))
    for shard in shards:
        # Local order preserves global plan order.
        assert shard.job_indices == sorted(shard.job_indices)
        assert [plan.jobs[i] for i in shard.job_indices] == shard.jobs


def test_partition_is_stable_and_balanced(small):
    netlist, _ = small
    plan = plan_sweep([("d", netlist)], CFG, GRID)
    first = partition_plan(plan, 3)
    # Re-plan from scratch: identical content -> identical placement.
    again = partition_plan(plan_sweep([("d", netlist)], CFG, GRID), 3)
    assert [s.job_indices for s in first] == [s.job_indices for s in again]
    loads = [s.num_jobs for s in first]
    assert max(loads) - min(loads) <= 1


def test_partition_rejects_bad_shard_count(small):
    netlist, _ = small
    plan = plan_sweep([("d", netlist)], CFG, {"lambda_skip": [0]})
    with pytest.raises(ServiceError):
        partition_plan(plan, 0)


def test_shard_sort_key_separates_nondet_ordinals():
    fp = "ab" * 32
    assert shard_sort_key(fp, 0) == fp
    assert shard_sort_key(fp, 1) != fp
    assert shard_sort_key(fp, 1) != shard_sort_key(fp, 2)
    assert shard_sort_key(fp, 1) == shard_sort_key(fp, 1)


_AXIS_POOL = {
    "num_seeds": (2, 4, 6, 8),
    "lambda_skip": (0, 10, 20),
    "min_gtl_size": (20, 30, 40),
    "boundary_fraction": (0.1, 0.2),
}


@st.composite
def _grids(draw):
    axes = draw(
        st.lists(
            st.sampled_from(sorted(_AXIS_POOL)), min_size=1, max_size=3,
            unique=True,
        )
    )
    # Values drawn with repetition so colliding grid points (the dedup
    # cases) are generated routinely.
    return {
        axis: draw(
            st.lists(st.sampled_from(_AXIS_POOL[axis]), min_size=1, max_size=3)
        )
        for axis in axes
    }


@settings(max_examples=30, deadline=None)
@given(grid=_grids(), num_shards=st.integers(1, 5))
def test_property_deterministic_dedup_survives_sharding(grid, num_shards):
    """Deterministic points dedup in the plan; sharding never re-splits or
    re-executes them — every deduplicated job lives on exactly one shard."""
    plan = plan_sweep([("d", _TINY)], CFG, grid)
    # Deterministic planning: one job per distinct fingerprint.
    fingerprints = [job.fingerprint for job in plan.jobs]
    assert len(set(fingerprints)) == len(fingerprints)
    assert len(plan.points) >= len(plan.jobs)
    shards = partition_plan(plan, num_shards)
    covered = sorted(i for shard in shards for i in shard.job_indices)
    assert covered == list(range(len(plan.jobs)))  # exactly-once
    loads = [s.num_jobs for s in shards]
    assert max(loads) - min(loads) <= 1
    # No fingerprint appears on two shards.
    owner = {}
    for shard in shards:
        for job in shard.jobs:
            assert job.fingerprint not in owner
            owner[job.fingerprint] = shard.shard_id


@settings(max_examples=30, deadline=None)
@given(grid=_grids(), num_shards=st.integers(1, 5))
def test_property_nondet_points_never_merge_across_shards(grid, num_shards):
    """seed=None points are independent samples: one job each in the plan,
    and sharding keeps every one of them (no collapse, no loss)."""
    base = FinderConfig(num_seeds=4, seed=None)
    plan = plan_sweep([("d", _TINY)], base, grid)
    assert len(plan.jobs) == len(plan.points)  # never deduplicated
    assert [p.job_index for p in plan.points] == list(range(len(plan.jobs)))
    shards = partition_plan(plan, num_shards)
    covered = sorted(i for shard in shards for i in shard.job_indices)
    assert covered == list(range(len(plan.jobs)))  # none merged away
    # Colliding fingerprints are distinct jobs even when they land on the
    # same shard.
    total = sum(shard.num_jobs for shard in shards)
    assert total == len(plan.points)


# ----------------------------------------------------------------------
# Coordinator: local dispatch
# ----------------------------------------------------------------------
def _strip_volatile(rows):
    for row in rows:
        row.pop("runtime_seconds")
        row.pop("cached")
        if row["report"]:
            row["report"].pop("runtime_seconds")
    return rows


def test_sharded_sweep_matches_single_process(small, tmp_path):
    netlist, _ = small
    designs = [("d", netlist)]
    with ResultStore(str(tmp_path / "single")) as store, BatchRunner(
        store=store
    ) as runner:
        reference = run_sweep(designs, CFG, GRID, runner)
    coordinator = SweepCoordinator(4, cache_dir=str(tmp_path / "sharded"))
    outcome = coordinator.run(designs, CFG, GRID)
    assert outcome.mode == "local"
    assert all(result.ok for result in outcome.job_results)
    assert _strip_volatile(point_rows(outcome)) == _strip_volatile(
        point_rows(reference)
    )


def test_sharded_rerun_is_warm_and_merges_back(small, tmp_path):
    netlist, _ = small
    designs = [("d", netlist)]
    cache = str(tmp_path / "cache")
    cold = SweepCoordinator(4, cache_dir=cache).run(designs, CFG, GRID)
    assert cold.cache_hits == 0
    assert cold.merge_stats is not None
    assert cold.merge_stats.copied == len(cold.plan.jobs)
    # Stable sharding: the rerun replays every shard against its own store.
    warm = SweepCoordinator(4, cache_dir=cache).run(designs, CFG, GRID)
    assert warm.cache_hits == len(warm.plan.jobs)
    # The merged main store answers an unsharded sweep warm too.
    with ResultStore(cache) as store, BatchRunner(store=store) as runner:
        single = run_sweep(designs, CFG, GRID, runner)
        assert all(result.cached for result in single.job_results)


def test_more_shards_than_jobs(small, tmp_path):
    netlist, _ = small
    outcome = SweepCoordinator(6, cache_dir=str(tmp_path / "c")).run(
        [("d", netlist)], CFG, {"lambda_skip": [0, 10]}
    )
    assert all(result.ok for result in outcome.job_results)
    assert len(outcome.shard_stats) == 6
    assert not outcome.failed_shards  # empty shards are vacuously ok


def test_coordinator_validates_arguments():
    with pytest.raises(ServiceError):
        SweepCoordinator(0)
    with pytest.raises(ServiceError):
        SweepCoordinator(2, max_shard_attempts=0)


# Injected shard runners must be module-level so worker processes can
# unpickle them by reference.
def _fail_shard_zero(shard, cache_dir, use_cache, workers, max_attempts):
    if shard.shard_id == 0:
        raise RuntimeError("injected shard failure")
    return _execute_shard(shard, cache_dir, use_cache, workers, max_attempts)


def _flaky_first_attempt(shard, cache_dir, use_cache, workers, max_attempts):
    os.makedirs(cache_dir, exist_ok=True)
    marker = os.path.join(cache_dir, f"attempted-{shard.shard_id}")
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("1")
        raise RuntimeError("flaky first attempt")
    return _execute_shard(shard, cache_dir, use_cache, workers, max_attempts)


def test_dead_shard_fails_loudly_without_sinking_the_sweep(small, tmp_path):
    netlist, _ = small
    coordinator = SweepCoordinator(
        2, cache_dir=str(tmp_path / "c"), max_shard_attempts=1
    )
    coordinator._shard_runner = _fail_shard_zero
    outcome = coordinator.run([("d", netlist)], CFG, GRID)
    dead = outcome.failed_shards
    assert [stats.shard_id for stats in dead] == [0]
    assert "injected shard failure" in dead[0].error
    # Shard 0's points carry an error naming the shard; shard 1's stand.
    by_shard = {0: [], 1: []}
    shards = partition_plan(outcome.plan, 2)
    for shard in shards:
        for index in shard.job_indices:
            by_shard[shard.shard_id].append(outcome.job_results[index])
    assert all(not r.ok and "shard 0" in r.error for r in by_shard[0])
    assert all(r.ok for r in by_shard[1])
    assert by_shard[0] and by_shard[1]
    # The aggregate records the failure.
    aggregate = aggregate_sweep(outcome)
    assert aggregate.failed_points == sum(
        1 for r in outcome.job_results if not r.ok
    )
    assert "FAILED" in aggregate.summary()


def test_failed_shard_is_retried_and_recovers(small, tmp_path):
    netlist, _ = small
    coordinator = SweepCoordinator(
        2, cache_dir=str(tmp_path / "c"), max_shard_attempts=2
    )
    coordinator._shard_runner = _flaky_first_attempt
    outcome = coordinator.run([("d", netlist)], CFG, GRID)
    assert all(result.ok for result in outcome.job_results)
    assert not outcome.failed_shards
    assert all(stats.attempts == 2 for stats in outcome.shard_stats)


# ----------------------------------------------------------------------
# Store merge
# ----------------------------------------------------------------------
def _payload(tag):
    return {"tag": tag}


def test_merge_from_copies_and_combines(tmp_path):
    with ResultStore(str(tmp_path / "a")) as dest, ResultStore(
        str(tmp_path / "b")
    ) as src:
        dest.put_payload("f1", _payload("one"), kind="x")
        src.put_payload("f1", _payload("one"), kind="x")  # identical twin
        src.put_payload("f2", _payload("two"), kind="x")  # new row
        src.get_payload("f2")  # bump use_count to 1
        dest.get_payload("f1")  # dest use_count 1
        src.get_payload("f1")
        src.get_payload("f1")  # src use_count 2

        stats = dest.merge_from(src)
        assert (stats.copied, stats.merged, stats.conflicts) == (1, 1, 0)
        assert len(dest) == 2
        assert dest.get_payload("f2") == _payload("two")
        # Identical rows combine usage: 1 (dest) + 2 (src), +1 for the
        # get_payload assertion below.
        with dest._lock:
            count = dest._conn.execute(
                "SELECT use_count FROM results WHERE fingerprint = 'f1'"
            ).fetchone()[0]
        assert count == 3


def test_merge_from_accepts_a_path_and_counts_stale(tmp_path):
    src_dir = str(tmp_path / "src")
    with ResultStore(src_dir) as src:
        src.put_payload("fresh", _payload("ok"), kind=KIND_FINDER_REPORT)
        src.put_payload("old", _payload("stale"), kind=KIND_FINDER_REPORT)
        with src._lock:
            src._conn.execute(
                "UPDATE results SET schema_version = ? WHERE fingerprint = 'old'",
                (row_schema_version(KIND_FINDER_REPORT) - 1,),
            )
            src._conn.commit()
    with ResultStore(str(tmp_path / "dest")) as dest:
        stats = dest.merge_from(src_dir)
        assert stats.copied == 1
        assert stats.stale_skipped == 1
        assert "fresh" in dest and "old" not in dest


def test_merge_conflict_resolved_by_use_count_then_recency(tmp_path):
    with ResultStore(str(tmp_path / "a")) as dest, ResultStore(
        str(tmp_path / "b")
    ) as src:
        dest.put_payload("f", _payload("mine"), kind="x")
        src.put_payload("f", _payload("theirs"), kind="x")
        src.get_payload("f")  # src use_count 1 > dest 0
        stats = dest.merge_from(src)
        assert stats.conflicts == 1
        assert dest.get_payload("f") == _payload("theirs")

    with ResultStore(str(tmp_path / "c")) as dest, ResultStore(
        str(tmp_path / "d")
    ) as src:
        dest.put_payload("f", _payload("mine"), kind="x")
        dest.get_payload("f")
        dest.get_payload("f")  # dest use_count 2 wins
        src.put_payload("f", _payload("theirs"), kind="x")
        src.get_payload("f")
        stats = dest.merge_from(src)
        assert stats.conflicts == 1
        assert dest.get_payload("f") == _payload("mine")


def test_merge_stats_combined():
    total = MergeStats(copied=1, merged=2).combined(
        MergeStats(conflicts=3, stale_skipped=4)
    )
    assert (total.copied, total.merged, total.conflicts, total.stale_skipped) \
        == (1, 2, 3, 4)
    assert total.total == 10
    assert "1 copied" in total.summary()


# ----------------------------------------------------------------------
# Aggregate
# ----------------------------------------------------------------------
def test_aggregate_per_axis_and_schema(small, tmp_path):
    netlist, _ = small
    outcome = SweepCoordinator(2, cache_dir=str(tmp_path / "c")).run(
        [("d", netlist)], CFG, GRID
    )
    aggregate = aggregate_sweep(outcome)
    assert aggregate.points == 4 and aggregate.jobs == 4
    assert set(aggregate.per_axis) == {"lambda_skip", "min_gtl_size"}
    for values in aggregate.per_axis.values():
        assert sum(v["points"] for v in values.values()) == 4
        for value in values.values():
            assert value["ok"] == value["points"]
            assert value["mean_num_gtls"] > 0
    assert aggregate.mode == "local"
    assert len(aggregate.shards) == 2
    assert aggregate.wall_seconds > 0

    path = str(tmp_path / "agg.json")
    write_aggregate(path, aggregate)
    data = json.load(open(path))
    assert data["schema"] == AGGREGATE_SCHEMA
    assert data["cache"] == {"hits": 0, "misses": 4}
    assert data["merge"]["copied"] == 4


def test_aggregate_works_on_plain_outcome(small, tmp_path):
    netlist, _ = small
    with BatchRunner() as runner:
        outcome = run_sweep([("d", netlist)], CFG, {"lambda_skip": [0]}, runner)
    aggregate = aggregate_sweep(outcome)
    assert aggregate.mode == "single"
    assert aggregate.shards == [] and aggregate.merge is None
    assert aggregate.points == 1


# ----------------------------------------------------------------------
# CLI round trips
# ----------------------------------------------------------------------
@pytest.fixture()
def sweep_manifest(tmp_path):
    netlist, _ = planted_gtl_graph(600, [50], seed=5)
    design = str(tmp_path / "d.hgr")
    write_hgr(netlist, design)
    manifest = tmp_path / "sweep.json"
    manifest.write_text(json.dumps({
        "designs": ["d.hgr"],
        "base": {"num_seeds": 4, "seed": 3},
        "grid": {"lambda_skip": [0, 10], "min_gtl_size": [20, 30]},
    }))
    return tmp_path, str(manifest)


def test_cli_sharded_sweep_parity_and_aggregate(sweep_manifest, capsys):
    tmp_path, manifest = sweep_manifest
    single = str(tmp_path / "single.jsonl")
    sharded = str(tmp_path / "sharded.jsonl")
    aggregate = str(tmp_path / "agg.json")
    assert main(["sweep", manifest, "--quiet", "--jsonl", single,
                 "--cache-dir", str(tmp_path / "c1")]) == 0
    assert main(["sweep", manifest, "--quiet", "--shards", "4",
                 "--jsonl", sharded, "--aggregate", aggregate,
                 "--cache-dir", str(tmp_path / "c2")]) == 0
    out = capsys.readouterr().out
    assert "shard 0:" in out and "mode: local" in out
    rows_single = _strip_volatile([json.loads(l) for l in open(single)])
    rows_sharded = _strip_volatile([json.loads(l) for l in open(sharded)])
    assert rows_sharded == rows_single
    data = json.load(open(aggregate))
    assert data["points"] == 4 and len(data["shards"]) == 4


def test_cli_store_merge(sweep_manifest, capsys):
    tmp_path, manifest = sweep_manifest
    cache = str(tmp_path / "c")
    assert main(["sweep", manifest, "--quiet", "--shards", "2",
                 "--cache-dir", cache]) == 0
    capsys.readouterr()
    dest = str(tmp_path / "merged")
    sources = [shard_store_path(cache, shard_id) for shard_id in (0, 1)]
    assert main(["store", "merge", dest] + sources) == 0
    out = capsys.readouterr().out
    assert "0 -> 4 entr(ies)" in out
    with ResultStore(dest) as store:
        assert len(store) == 4


def test_cli_sweep_unknown_axis_lists_fields(sweep_manifest, capsys):
    tmp_path, _ = sweep_manifest
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({
        "designs": ["d.hgr"], "base": {"seed": 1},
        "grid": {"bogus_axis": [1]},
    }))
    assert main(["sweep", str(bad), "--no-cache", "--quiet"]) == 2
    err = capsys.readouterr().err
    assert "bogus_axis" in err and "valid fields" in err
    assert "num_seeds" in err and "lambda_skip" in err
