"""The binary pack format: round trips, zero-copy loads, validation.

A pack blob must reproduce the source netlist bit-for-bit (arrays, names,
attributes and content fingerprint) whether it is rebuilt from bytes,
mmap-loaded from disk or re-packed from another pack file — under both
compute backends.  Malformed inputs must fail with typed
:class:`~repro.errors.ParseError`\\ s that name the file and, for magic
mismatches, the expected magic.
"""

import pickle
import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParseError
from repro.io import load_design, pack_design
from repro.io.binfmt import (
    FORMAT_VERSION,
    MAGIC,
    load_packed,
    netlist_from_bytes,
    packed_fingerprint,
    read_header,
    serialize_netlist,
    write_packed,
)
from repro.io.hgr import write_hgr
from repro.netlist import ArrayBackedNetlist, NetlistBuilder
from repro.netlist.backend import forced_backend
from repro.service.fingerprint import fingerprint_netlist


# ---------------------------------------------------------------- helpers
@st.composite
def netlists(draw):
    """Small random netlists: mixed areas/pin counts/fixed flags, odd names."""
    num_cells = draw(st.integers(min_value=1, max_value=24))
    builder = NetlistBuilder()
    for index in range(num_cells):
        builder.add_cell(
            name=draw(
                st.sampled_from([f"c{index}", f"ünïc{index}", f"a/b[{index}]"])
            ),
            area=draw(st.sampled_from([0.5, 1.0, 2.25])),
            pin_count=draw(st.one_of(st.none(), st.integers(16, 24))),
            fixed=draw(st.booleans()),
        )
    for _ in range(draw(st.integers(min_value=0, max_value=16))):
        members = draw(
            st.lists(
                st.integers(0, num_cells - 1), min_size=1, max_size=6, unique=True
            )
        )
        builder.add_net(None, members)
    return builder.build()


def _assert_bit_identical(loaded, original):
    """Arrays, names, attributes and fingerprint all agree exactly."""
    fresh, view = original.arrays, loaded.arrays
    for field in vars(fresh):
        a, b = getattr(fresh, field), getattr(view, field)
        assert a.dtype == b.dtype
        np.testing.assert_array_equal(a, b)
    assert loaded.num_cells == original.num_cells
    assert loaded.num_nets == original.num_nets
    assert loaded.num_pins == original.num_pins
    for cell in range(original.num_cells):
        assert loaded.cell_name(cell) == original.cell_name(cell)
        assert loaded.cell_area(cell) == original.cell_area(cell)
        assert loaded.cell_pin_count(cell) == original.cell_pin_count(cell)
        assert loaded.cell_is_fixed(cell) == original.cell_is_fixed(cell)
        assert loaded.nets_of_cell(cell) == original.nets_of_cell(cell)
        assert loaded.neighbors(cell) == original.neighbors(cell)
    for net in range(original.num_nets):
        assert loaded.net_name(net) == original.net_name(net)
        assert loaded.cells_of_net(net) == original.cells_of_net(net)
    assert loaded == original
    assert original == loaded
    assert fingerprint_netlist(loaded) == fingerprint_netlist(original)


# ---------------------------------------------------------------- round trips
@settings(max_examples=40, deadline=None)
@given(netlists())
def test_bytes_roundtrip_bit_identical(netlist):
    loaded = netlist_from_bytes(serialize_netlist(netlist))
    assert isinstance(loaded, ArrayBackedNetlist)
    _assert_bit_identical(loaded, netlist)


@pytest.mark.parametrize("backend", ["numpy", "python"])
def test_mmap_roundtrip_both_backends(tmp_path, mixed_netlist, backend):
    path = str(tmp_path / "design.nla")
    with forced_backend(backend):
        write_packed(mixed_netlist, path)
        loaded = load_packed(path)
        _assert_bit_identical(loaded, mixed_netlist)
        assert loaded.source == path


def test_header_fingerprint_matches_content(tmp_path, small_planted):
    netlist, _ = small_planted
    path = str(tmp_path / "planted.nla")
    write_packed(netlist, path)
    # The header fingerprint is readable without touching the payload and
    # equals a full content walk of both the original and the loaded view.
    assert packed_fingerprint(path) == fingerprint_netlist(netlist)
    header = read_header(path)
    assert header.version == FORMAT_VERSION
    assert header.num_cells == netlist.num_cells
    assert header.num_pins == netlist.num_pins
    loaded = load_packed(path)
    loaded.derived_cache.clear()  # force a recompute, not the seeded memo
    assert fingerprint_netlist(loaded) == header.fingerprint


def test_load_design_dispatches_packed(tmp_path, mixed_netlist):
    path = str(tmp_path / "design.nla")
    write_packed(mixed_netlist, path)
    loaded = load_design(path)
    assert isinstance(loaded, ArrayBackedNetlist)
    assert loaded == mixed_netlist


def test_pack_design_parse_once(tmp_path, mixed_netlist):
    source = str(tmp_path / "design.hgr")
    write_hgr(mixed_netlist, source)
    packed = str(tmp_path / "design.nla")
    pack_design(source, packed)
    reference = load_design(source)
    _assert_bit_identical(load_packed(packed), reference)
    # Packing a pack file is a lossless re-pack.
    repacked = str(tmp_path / "again.nla")
    pack_design(packed, repacked)
    _assert_bit_identical(load_packed(repacked), reference)


def test_pack_design_rejects_bad_extension(tmp_path, mixed_netlist):
    source = str(tmp_path / "design.hgr")
    write_hgr(mixed_netlist, source)
    with pytest.raises(ParseError, match=r"\.nla"):
        pack_design(source, str(tmp_path / "design.bin"))


def test_packed_netlist_pickles_through_blob(tmp_path, mixed_netlist):
    path = str(tmp_path / "design.nla")
    write_packed(mixed_netlist, path)
    loaded = load_packed(path)
    clone = pickle.loads(pickle.dumps(loaded))
    assert isinstance(clone, ArrayBackedNetlist)
    _assert_bit_identical(clone, mixed_netlist)


def test_loaded_arrays_are_readonly(tmp_path, mixed_netlist):
    path = str(tmp_path / "design.nla")
    write_packed(mixed_netlist, path)
    loaded = load_packed(path)
    with pytest.raises(ValueError):
        loaded.arrays.net_cells[0] = 3


# ---------------------------------------------------------------- validation
def _packed(tmp_path, netlist, name="design.nla"):
    path = str(tmp_path / name)
    write_packed(netlist, path)
    return path


def test_bad_magic_names_file_and_expected_magic(tmp_path, mixed_netlist):
    path = _packed(tmp_path, mixed_netlist)
    blob = bytearray(open(path, "rb").read())
    blob[:8] = b"NOTAPACK"
    open(path, "wb").write(blob)
    with pytest.raises(ParseError) as excinfo:
        load_packed(path)
    message = str(excinfo.value)
    assert path in message
    assert repr(MAGIC) in message


def test_version_mismatch_is_rejected(tmp_path, mixed_netlist):
    path = _packed(tmp_path, mixed_netlist)
    blob = bytearray(open(path, "rb").read())
    struct.pack_into("<I", blob, 8, FORMAT_VERSION + 41)
    open(path, "wb").write(blob)
    with pytest.raises(ParseError) as excinfo:
        read_header(path)
    message = str(excinfo.value)
    assert path in message
    assert f"version {FORMAT_VERSION + 41}" in message


def test_truncated_payload_is_rejected(tmp_path, mixed_netlist):
    path = _packed(tmp_path, mixed_netlist)
    blob = open(path, "rb").read()
    open(path, "wb").write(blob[: len(blob) - 16])
    with pytest.raises(ParseError, match="truncated"):
        load_packed(path)


def test_truncated_header_is_rejected(tmp_path, mixed_netlist):
    path = _packed(tmp_path, mixed_netlist)
    blob = open(path, "rb").read()
    open(path, "wb").write(blob[:20])  # fixed header + a sliver of JSON
    with pytest.raises(ParseError, match="truncated"):
        read_header(path)


def test_empty_file_is_rejected(tmp_path):
    path = str(tmp_path / "empty.nla")
    open(path, "wb").close()
    with pytest.raises(ParseError) as excinfo:
        load_packed(path)
    message = str(excinfo.value)
    assert path in message
    assert repr(MAGIC) in message


def test_corrupt_json_header_is_rejected(tmp_path, mixed_netlist):
    path = _packed(tmp_path, mixed_netlist)
    blob = bytearray(open(path, "rb").read())
    blob[16:24] = b"{broken!"
    open(path, "wb").write(blob)
    with pytest.raises(ParseError, match="header"):
        read_header(path)


def test_section_shape_mismatch_is_rejected(tmp_path, mixed_netlist):
    path = _packed(tmp_path, mixed_netlist)
    blob = bytearray(open(path, "rb").read())
    # Lie about the cell count: section shapes no longer match the counts.
    header_len = struct.unpack_from("<I", blob, 12)[0]
    header = blob[16:16 + header_len].decode("utf-8")
    mutated = header.replace(
        f'"num_cells":{mixed_netlist.num_cells}',
        f'"num_cells":{mixed_netlist.num_cells + 1}',
    )
    assert mutated != header
    blob[16:16 + header_len] = mutated.encode("utf-8")
    open(path, "wb").write(blob)
    with pytest.raises(ParseError, match="shape"):
        read_header(path)
