"""Tests for Phases II-III and the full finder pipeline."""

import pytest

from repro.errors import FinderError
from repro.finder import (
    FinderConfig,
    TangledLogicFinder,
    extract_candidate,
    find_tangled_logic,
    grow_linear_ordering,
    prune_overlapping,
    refine_candidate,
)
from repro.finder.candidate import CandidateGTL, scan_ordering
from repro.finder.refine import genetic_family, is_connected_group
from repro.netlist.builder import NetlistBuilder
from repro.netlist.ops import GroupStats


# ---------------------------------------------------------------- config
def test_config_defaults_valid():
    FinderConfig()


@pytest.mark.parametrize(
    "kwargs",
    [
        {"num_seeds": 0},
        {"max_order_length": -1},
        {"metric": "bogus"},
        {"min_gtl_size": 1},
        {"boundary_fraction": 0.0},
        {"boundary_fraction": 1.5},
        {"clear_min_threshold": 0.0},
        {"lambda_skip": -1},
        {"refine_count": -1},
        {"refine_length_factor": 0.5},
        {"workers": 0},
    ],
)
def test_config_rejects_bad_values(kwargs):
    with pytest.raises(FinderError):
        FinderConfig(**kwargs)


def test_config_resolve_order_length():
    config = FinderConfig(max_order_length=500)
    assert config.resolve_order_length(10_000) == 500
    assert config.resolve_order_length(300) == 299
    auto = FinderConfig()
    assert auto.resolve_order_length(400_000) == 100_000
    assert auto.resolve_order_length(100) == 64


def test_config_with_overrides():
    config = FinderConfig().with_overrides(num_seeds=7)
    assert config.num_seeds == 7


# ---------------------------------------------------------------- phase II
def test_extract_candidate_finds_planted_block(small_planted):
    netlist, truth = small_planted
    block = truth[0]
    seed = sorted(block)[3]
    config = FinderConfig(min_gtl_size=30)
    ordering = grow_linear_ordering(netlist, seed, 600)
    candidate = extract_candidate(netlist, ordering, config)
    assert candidate is not None
    assert candidate.cells == block
    assert candidate.score < 0.2
    assert candidate.seed == seed


def test_extract_candidate_none_outside_gtl(small_planted):
    netlist, truth = small_planted
    outside = next(c for c in range(netlist.num_cells) if c not in truth[0])
    ordering = grow_linear_ordering(netlist, outside, 400)
    candidate = extract_candidate(netlist, ordering, FinderConfig())
    assert candidate is None  # flat curve, no clear minimum


def test_extract_candidate_short_ordering_returns_none(triangle):
    ordering = [0, 1, 2]
    assert extract_candidate(triangle, ordering, FinderConfig()) is None


def test_extract_candidate_empty_ordering_raises(triangle):
    with pytest.raises(FinderError):
        extract_candidate(triangle, [], FinderConfig())


def test_extract_candidate_respects_min_size(small_planted):
    netlist, truth = small_planted
    seed = sorted(truth[0])[0]
    ordering = grow_linear_ordering(netlist, seed, 600)
    config = FinderConfig(min_gtl_size=250)  # larger than the block
    candidate = extract_candidate(netlist, ordering, config)
    assert candidate is None or candidate.size >= 250


def test_extract_candidate_boundary_rejection(small_planted):
    """A minimum at the right end of the ordering is not a clear minimum."""
    netlist, truth = small_planted
    seed = sorted(truth[0])[0]
    block = truth[0]
    ordering = grow_linear_ordering(netlist, seed, len(block))  # stops at min
    candidate = extract_candidate(
        netlist, ordering, FinderConfig(boundary_fraction=0.9)
    )
    assert candidate is None


def test_extract_candidate_forced_rent_exponent(small_planted):
    netlist, truth = small_planted
    seed = sorted(truth[0])[0]
    ordering = grow_linear_ordering(netlist, seed, 600)
    candidate = extract_candidate(
        netlist, ordering, FinderConfig(), rent_exponent=0.75
    )
    assert candidate is not None
    assert candidate.rent_exponent == 0.75


def test_scan_ordering_lengths(two_cliques):
    stats = scan_ordering(two_cliques, list(range(8)))
    assert [s.size for s in stats] == list(range(1, 9))


# ---------------------------------------------------------------- phase III
def test_genetic_family_contents():
    a = frozenset({1, 2, 3})
    b = frozenset({3, 4})
    family = genetic_family([a, b])
    assert a in family and b in family
    assert frozenset({1, 2, 3, 4}) in family  # union
    assert frozenset({3}) in family  # intersection
    assert frozenset({1, 2}) in family  # a - b
    assert frozenset({4}) in family  # b - a
    assert all(member for member in family)  # no empty sets


def test_genetic_family_deduplicates():
    a = frozenset({1, 2})
    family = genetic_family([a, a])
    assert family.count(a) == 1


def test_is_connected_group(two_cliques):
    assert is_connected_group(two_cliques, range(4))
    assert is_connected_group(two_cliques, range(8))
    assert not is_connected_group(two_cliques, [0, 1, 6, 7])
    assert not is_connected_group(two_cliques, [])


def test_refine_recovers_block_from_noisy_candidate(small_planted):
    """A candidate with boundary noise refines back to the planted block."""
    netlist, truth = small_planted
    block = truth[0]
    noisy = set(block)
    outside = [c for c in range(netlist.num_cells) if c not in block]
    noisy.update(outside[:10])  # 5% junk
    noisy_stats = GroupStats(len(noisy), 0, 0, 0, 1.0)  # refreshed inside
    candidate = CandidateGTL(
        cells=frozenset(noisy),
        score=1.0,
        stats=noisy_stats,
        rent_exponent=0.8,
        seed=sorted(block)[0],
    )
    refined = refine_candidate(
        netlist, candidate, FinderConfig(), rent_exponent=0.8, rng=3
    )
    assert len(refined.cells ^ block) <= len(noisy ^ block)
    assert refined.score < 0.2


def test_prune_overlapping_keeps_best_disjoint():
    def make(cells, score, seed=0):
        return CandidateGTL(
            cells=frozenset(cells),
            score=score,
            stats=GroupStats(len(cells), 1, len(cells), 0, 1.0),
            rent_exponent=0.6,
            seed=seed,
        )

    best = make({1, 2, 3}, 0.1)
    overlapping = make({3, 4, 5}, 0.2)
    disjoint = make({7, 8}, 0.3)
    kept = prune_overlapping([overlapping, best, disjoint])
    assert [k.cells for k in kept] == [best.cells, disjoint.cells]


def test_prune_collapses_duplicates():
    def make(score, seed):
        return CandidateGTL(
            cells=frozenset({1, 2}),
            score=score,
            stats=GroupStats(2, 1, 2, 0, 1.0),
            rent_exponent=0.6,
            seed=seed,
        )

    kept = prune_overlapping([make(0.5, 1), make(0.2, 2)])
    assert len(kept) == 1
    assert kept[0].score == 0.2


def test_prune_empty():
    assert prune_overlapping([]) == []


# ---------------------------------------------------------------- pipeline
def test_finder_requires_two_cells():
    builder = NetlistBuilder()
    builder.add_cell()
    with pytest.raises(FinderError):
        TangledLogicFinder(builder.build())


def test_find_single_planted_block(small_planted):
    netlist, truth = small_planted
    report = find_tangled_logic(netlist, num_seeds=12, seed=5)
    assert report.num_gtls >= 1
    best = report.gtls[0]
    assert best.cells == truth[0]
    assert best.ngtl_score < 0.3
    assert report.runtime_seconds > 0
    assert report.num_candidates >= 1


def test_find_two_planted_blocks(two_block_planted):
    netlist, truth = two_block_planted
    report = find_tangled_logic(netlist, num_seeds=24, seed=3)
    found = [g.cells for g in report.gtls]
    for block in truth:
        assert any(len(block & f) / len(block) > 0.95 for f in found)


def test_report_gtls_are_disjoint(two_block_planted):
    netlist, _ = two_block_planted
    report = find_tangled_logic(netlist, num_seeds=24, seed=3)
    seen = set()
    for gtl in report.gtls:
        assert seen.isdisjoint(gtl.cells)
        seen.update(gtl.cells)


def test_report_sorted_by_score(two_block_planted):
    netlist, _ = two_block_planted
    report = find_tangled_logic(netlist, num_seeds=24, seed=3)
    scores = [g.score for g in report.gtls]
    assert scores == sorted(scores)


def test_finder_deterministic_with_seed(small_planted):
    netlist, _ = small_planted
    r1 = find_tangled_logic(netlist, num_seeds=8, seed=11)
    r2 = find_tangled_logic(netlist, num_seeds=8, seed=11)
    assert [g.cells for g in r1.gtls] == [g.cells for g in r2.gtls]


def test_finder_parallel_matches_serial(small_planted):
    netlist, _ = small_planted
    serial = find_tangled_logic(netlist, num_seeds=8, seed=11, workers=1)
    parallel = find_tangled_logic(netlist, num_seeds=8, seed=11, workers=2)
    assert [g.cells for g in serial.gtls] == [g.cells for g in parallel.gtls]


def test_report_summary_and_top(small_planted):
    netlist, _ = small_planted
    report = find_tangled_logic(netlist, num_seeds=8, seed=11)
    text = report.summary()
    assert "GTL" in text
    assert len(report.top(1)) <= 1


def test_gtl_contains(small_planted):
    netlist, truth = small_planted
    report = find_tangled_logic(netlist, num_seeds=8, seed=11)
    gtl = report.gtls[0]
    member = next(iter(gtl.cells))
    assert member in gtl


def test_finder_no_gtls_on_homogeneous_graph():
    """A plain random graph without planted structure yields no GTLs."""
    from repro.generators.random_gtl import planted_gtl_graph

    netlist, _ = planted_gtl_graph(1500, [60], seed=1)
    # Remove the planted block's advantage by searching far from it with
    # few seeds: instead, build a graph with the weakest possible block and
    # check scores of whatever is found are honest.
    report = find_tangled_logic(netlist, num_seeds=6, seed=2)
    for gtl in report.gtls:
        assert gtl.score < FinderConfig().clear_min_threshold
