"""Shared fixtures: small hand-built netlists and planted graphs."""

from __future__ import annotations

import pytest

from repro.generators.random_gtl import planted_gtl_graph
from repro.netlist.builder import NetlistBuilder


@pytest.fixture
def triangle():
    """Three cells pairwise connected by 2-pin nets."""
    builder = NetlistBuilder()
    a, b, c = builder.add_cells(3)
    builder.add_net("ab", [a, b])
    builder.add_net("bc", [b, c])
    builder.add_net("ca", [c, a])
    return builder.build()


@pytest.fixture
def two_cliques():
    """Two 4-cell cliques joined by a single bridge net.

    Cells 0-3 form clique A, cells 4-7 clique B; net "bridge" joins cell 3
    and cell 4.  A canonical two-cluster testcase.
    """
    builder = NetlistBuilder()
    cells = builder.add_cells(8)
    for group in (cells[:4], cells[4:]):
        for i, a in enumerate(group):
            for b in group[i + 1 :]:
                builder.add_net(None, [a, b])
    builder.add_net("bridge", [cells[3], cells[4]])
    return builder.build()


@pytest.fixture
def star_netlist():
    """One 5-pin net: a hub-less star (single hyperedge over 5 cells)."""
    builder = NetlistBuilder()
    cells = builder.add_cells(5)
    builder.add_net("star", cells)
    return builder.build()


@pytest.fixture
def mixed_netlist():
    """Small netlist with a pad, explicit pin counts and a 3-pin net."""
    builder = NetlistBuilder()
    a = builder.add_cell("a", area=2.0, pin_count=4)
    b = builder.add_cell("b")
    c = builder.add_cell("c")
    p = builder.add_cell("pad0", fixed=True)
    builder.add_net("n1", [a, b, c])
    builder.add_net("n2", [a, p])
    builder.add_net("n3", [b, c])
    return builder.build()


@pytest.fixture(scope="session")
def small_planted():
    """A 2000-cell random graph with one planted 200-cell GTL."""
    return planted_gtl_graph(2000, [200], seed=7)


@pytest.fixture(scope="session")
def two_block_planted():
    """A 4000-cell random graph with planted blocks of 150 and 400 cells."""
    return planted_gtl_graph(4000, [150, 400], seed=11)
