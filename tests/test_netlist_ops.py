"""Tests for group operations and the incremental prefix scanner."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetlistError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.ops import (
    PrefixScanner,
    boundary_nets,
    connected_components,
    cut_size,
    external_pin_count,
    group_pin_count,
    group_stats,
    induced_netlist,
    internal_nets,
    neighbors_of_group,
)


def test_cut_size_empty(triangle):
    assert cut_size(triangle, []) == 0


def test_cut_size_single(triangle):
    assert cut_size(triangle, [0]) == 2


def test_cut_size_whole_netlist(triangle):
    assert cut_size(triangle, [0, 1, 2]) == 0


def test_cut_size_two_cliques(two_cliques):
    assert cut_size(two_cliques, range(4)) == 1  # only the bridge


def test_boundary_and_internal_nets(two_cliques):
    group = set(range(4))
    boundary = boundary_nets(two_cliques, group)
    internal = internal_nets(two_cliques, group)
    assert len(boundary) == 1
    assert two_cliques.net_name(boundary[0]) == "bridge"
    assert len(internal) == 6  # C(4,2) clique nets


def test_external_pin_count(star_netlist):
    assert external_pin_count(star_netlist, 0, [0, 1]) == 3
    assert external_pin_count(star_netlist, 0, range(5)) == 0


def test_group_pin_count(mixed_netlist):
    assert group_pin_count(mixed_netlist, [0, 1]) == 6  # 4 explicit + 2


def test_neighbors_of_group(two_cliques):
    assert neighbors_of_group(two_cliques, range(4)) == [4]


def test_group_stats(two_cliques):
    stats = group_stats(two_cliques, range(4))
    assert stats.size == 4
    assert stats.cut == 1
    assert stats.internal_nets == 6
    assert stats.pins == sum(two_cliques.cell_pin_count(c) for c in range(4))
    assert stats.avg_pins == stats.pins / 4


def test_group_stats_empty_raises(triangle):
    with pytest.raises(NetlistError):
        group_stats(triangle, [])


def test_induced_netlist(two_cliques):
    sub, mapping = induced_netlist(two_cliques, range(4))
    assert sub.num_cells == 4
    assert sub.num_nets == 6  # bridge restricted to 1 pin -> dropped
    assert set(mapping) == set(range(4))


def test_induced_netlist_preserves_names(mixed_netlist):
    sub, mapping = induced_netlist(mixed_netlist, [0, 1, 2])
    assert sub.cell_name(mapping[0]) == "a"


def test_induced_netlist_empty_raises(triangle):
    with pytest.raises(NetlistError):
        induced_netlist(triangle, [])


def test_connected_components(two_cliques):
    assert len(connected_components(two_cliques)) == 1


def test_connected_components_disconnected():
    builder = NetlistBuilder()
    a, b, c, d = builder.add_cells(4)
    builder.add_net("n1", [a, b])
    builder.add_net("n2", [c, d])
    components = connected_components(builder.build())
    assert sorted(sorted(c) for c in components) == [[0, 1], [2, 3]]


# ---------------------------------------------------------------- scanner
def test_prefix_scanner_matches_batch(two_cliques):
    scanner = PrefixScanner(two_cliques)
    order = [0, 1, 2, 3, 4, 5, 6, 7]
    for k, cell in enumerate(order, start=1):
        scanner.add(cell)
        expected = group_stats(two_cliques, order[:k])
        assert scanner.stats() == expected


def test_prefix_scanner_rejects_duplicates(triangle):
    scanner = PrefixScanner(triangle)
    scanner.add(0)
    with pytest.raises(NetlistError):
        scanner.add(0)


def test_prefix_scanner_empty_stats_raise(triangle):
    scanner = PrefixScanner(triangle)
    with pytest.raises(NetlistError):
        scanner.stats()
    with pytest.raises(NetlistError):
        scanner.avg_pins


def test_prefix_scanner_contains(triangle):
    scanner = PrefixScanner(triangle)
    scanner.add(1)
    assert 1 in scanner
    assert 0 not in scanner


def test_prefix_scanner_singleton_net():
    builder = NetlistBuilder()
    a, b = builder.add_cells(2)
    builder.add_net("single", [a])
    builder.add_net("pair", [a, b])
    netlist = builder.build()
    scanner = PrefixScanner(netlist)
    scanner.add(a)
    assert scanner.cut == 1  # only the pair net crosses
    assert scanner.internal_nets == 1  # the singleton
    scanner.add(b)
    assert scanner.cut == 0
    assert scanner.internal_nets == 2


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_property_scanner_equals_batch_on_random_netlists(seed):
    """Incremental prefix stats always equal batch recomputation."""
    rng = random.Random(seed)
    builder = NetlistBuilder()
    num_cells = rng.randint(3, 25)
    cells = builder.add_cells(num_cells)
    for i in range(rng.randint(2, 35)):
        degree = rng.randint(1, min(5, num_cells))
        builder.add_net(f"n{i}", rng.sample(cells, degree))
    netlist = builder.build()

    order = list(range(num_cells))
    rng.shuffle(order)
    scanner = PrefixScanner(netlist)
    for k, cell in enumerate(order, start=1):
        scanner.add(cell)
        assert scanner.stats() == group_stats(netlist, order[:k])
